/**
 * @file
 * Tests for the bitstream and the activation compression codecs:
 * exact round-trips, measured sizes, and the orderings the paper's
 * Figs 5/14 rely on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>

#include "common/bitops.hh"
#include "common/rng.hh"
#include "encode/bitstream.hh"
#include "encode/schemes.hh"
#include "image/synth.hh"
#include "nn/executor.hh"
#include "nn/models.hh"

namespace diffy
{
namespace
{

TEST(BitStream, WritesAndReadsMixedWidths)
{
    BitWriter bw;
    bw.write(0b101, 3);
    bw.writeSigned(-5, 6);
    bw.write(0xFFFF, 16);
    bw.writeSigned(-1, 2);
    EXPECT_EQ(bw.bitCount(), 27u);

    BitReader br(bw.bytes());
    EXPECT_EQ(br.read(3), 0b101u);   // diffy-lint: allow(R4): raw reader primitives under test
    EXPECT_EQ(br.readSigned(6), -5);
    EXPECT_EQ(br.read(16), 0xFFFFu); // diffy-lint: allow(R4): raw reader primitives under test
    EXPECT_EQ(br.readSigned(2), -1);
    EXPECT_EQ(br.bitPosition(), 27u);
}

TEST(BitStream, RandomRoundTrip)
{
    Rng rng(77);
    std::vector<std::pair<std::int32_t, int>> fields;
    BitWriter bw;
    for (int i = 0; i < 3000; ++i) {
        int bits = 1 + static_cast<int>(rng.below(17));
        std::int32_t lo = -(1 << (bits - 1));
        std::int32_t hi = (1 << (bits - 1)) - 1;
        auto v = static_cast<std::int32_t>(
            lo + static_cast<std::int64_t>(rng.below(
                     static_cast<std::uint64_t>(hi - lo + 1))));
        fields.emplace_back(v, bits);
        bw.writeSigned(v, bits);
    }
    BitReader br(bw.bytes());
    for (const auto &[v, bits] : fields)
        ASSERT_EQ(br.readSigned(bits), v); // diffy-lint: allow(R4): raw reader primitives under test
}

TEST(BitStream, ReaderThrowsPastEnd)
{
    BitWriter bw;
    bw.write(1, 4);
    BitReader br(bw.bytes());
    br.read(4); // diffy-lint: allow(R4): raw reader primitives under test
    // Remaining padding bits (to the byte boundary) are readable, but
    // not beyond the buffer.
    br.read(4); // diffy-lint: allow(R4): raw reader primitives under test
    EXPECT_THROW(br.read(1), std::out_of_range);
}

TEST(BitStream, RejectsBadWidths)
{
    BitWriter bw;
    EXPECT_THROW(bw.write(0, 0), std::invalid_argument);
    EXPECT_THROW(bw.write(0, 33), std::invalid_argument);
}

// ---------------------------------------------------------------
// Codec round-trip properties
// ---------------------------------------------------------------

TensorI16
randomTensor(std::uint64_t seed, int c = 4, int h = 6, int w = 11,
             int bound = 32768)
{
    Rng rng(seed);
    TensorI16 t(c, h, w);
    for (std::size_t i = 0; i < t.size(); ++i) {
        t.data()[i] = static_cast<std::int16_t>(
            static_cast<std::int32_t>(rng.below(2 * bound)) - bound);
    }
    return t;
}

TensorI16
sparseSmoothTensor(std::uint64_t seed, int c = 4, int h = 8, int w = 32)
{
    // ReLU-like: runs of zeros and smooth positive ramps.
    Rng rng(seed);
    TensorI16 t(c, h, w);
    for (int ch = 0; ch < c; ++ch) {
        for (int y = 0; y < h; ++y) {
            std::int32_t level = static_cast<std::int32_t>(rng.below(600));
            for (int x = 0; x < w; ++x) {
                if (rng.uniform() < 0.4) {
                    t.at(ch, y, x) = 0;
                } else {
                    level += static_cast<std::int32_t>(rng.below(9)) - 4;
                    level = std::max(0, level);
                    t.at(ch, y, x) = static_cast<std::int16_t>(level);
                }
            }
        }
    }
    return t;
}

/** Every lossless codec must round-trip arbitrary int16 tensors. */
class LosslessCodecRoundTrip
    : public ::testing::TestWithParam<std::string>
{
  protected:
    std::unique_ptr<ActivationCodec>
    make() const
    {
        const std::string &name = GetParam();
        if (name == "NoCompression")
            return makeNoCompressionCodec();
        if (name == "RLEz")
            return makeRlezCodec();
        if (name == "RLE")
            return makeRleCodec();
        if (name == "RawD8")
            return makeRawDCodec(8);
        if (name == "RawD16")
            return makeRawDCodec(16);
        if (name == "RawD256")
            return makeRawDCodec(256);
        if (name == "DeltaD8")
            return makeDeltaDCodec(8);
        if (name == "DeltaD16")
            return makeDeltaDCodec(16);
        if (name == "DeltaD256")
            return makeDeltaDCodec(256);
        throw std::logic_error("unknown codec under test");
    }
};

TEST_P(LosslessCodecRoundTrip, RandomTensors)
{
    auto codec = make();
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        TensorI16 t = randomTensor(seed);
        EncodedTensor enc = codec->encode(t);
        EXPECT_EQ(codec->decode(enc), t) << codec->name();
    }
}

TEST_P(LosslessCodecRoundTrip, SparseSmoothTensors)
{
    auto codec = make();
    TensorI16 t = sparseSmoothTensor(9);
    EXPECT_EQ(codec->decode(codec->encode(t)), t) << codec->name();
}

TEST_P(LosslessCodecRoundTrip, ExtremeValues)
{
    auto codec = make();
    TensorI16 t(1, 2, 4);
    std::int16_t vals[8] = {32767, -32768, 0, -1, 1, -32768, 32767, 0};
    for (int i = 0; i < 8; ++i)
        t.data()[i] = vals[i];
    EXPECT_EQ(codec->decode(codec->encode(t)), t) << codec->name();
}

TEST_P(LosslessCodecRoundTrip, AllZeros)
{
    auto codec = make();
    TensorI16 t(3, 5, 7, 0);
    EncodedTensor enc = codec->encode(t);
    EXPECT_EQ(codec->decode(enc), t) << codec->name();
}

TEST_P(LosslessCodecRoundTrip, SingleElement)
{
    auto codec = make();
    TensorI16 t(1, 1, 1);
    t.at(0, 0, 0) = -1234;
    EXPECT_EQ(codec->decode(codec->encode(t)), t) << codec->name();
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, LosslessCodecRoundTrip,
    ::testing::Values("NoCompression", "RLEz", "RLE", "RawD8", "RawD16",
                      "RawD256", "DeltaD8", "DeltaD16", "DeltaD256"),
    [](const auto &name_info) { return name_info.param; });

TEST(ProfiledCodec, LosslessWhenPrecisionCovers)
{
    auto codec = makeProfiledCodec(11);
    TensorI16 t = randomTensor(5, 2, 4, 8, 1024); // 11-bit range
    EXPECT_EQ(codec->decode(codec->encode(t)), t);
}

TEST(ProfiledCodec, SaturatesOutliers)
{
    auto codec = makeProfiledCodec(8);
    TensorI16 t(1, 1, 3);
    t.at(0, 0, 0) = 1000;  // above 8-bit max 127
    t.at(0, 0, 1) = -1000; // below -128
    t.at(0, 0, 2) = 100;
    TensorI16 back = codec->decode(codec->encode(t));
    EXPECT_EQ(back.at(0, 0, 0), 127);
    EXPECT_EQ(back.at(0, 0, 1), -128);
    EXPECT_EQ(back.at(0, 0, 2), 100);
}

TEST(ProfiledCodec, RejectsBadPrecision)
{
    EXPECT_THROW(makeProfiledCodec(0), std::invalid_argument);
    EXPECT_THROW(makeProfiledCodec(17), std::invalid_argument);
    // The makeCodec() path (profiled bits from a layer profile) gets
    // the same validation: a precision wider than the legal 16 bits
    // must be rejected, not trusted.
    EXPECT_THROW(makeCodec(Compression::Profiled, 40),
                 std::invalid_argument);
}

// ---------------------------------------------------------------
// Hardened decode: truncation and hostile headers
// ---------------------------------------------------------------

TEST_P(LosslessCodecRoundTrip, TruncatedStreamsReportCleanError)
{
    auto codec = make();
    TensorI16 t = sparseSmoothTensor(21);
    const EncodedTensor valid = codec->encode(t);
    ASSERT_FALSE(valid.bytes.empty());
    // Drop 1 byte, a quarter, half, and everything: each cut removes
    // needed fields, so the hardened decoder must report Truncated —
    // and the throwing wrapper must surface it as an exception.
    for (std::size_t keep :
         {valid.bytes.size() - 1, valid.bytes.size() * 3 / 4,
          valid.bytes.size() / 2, std::size_t{0}}) {
        EncodedTensor cut = valid;
        cut.bytes.resize(keep);
        DecodeResult r = codec->tryDecode(cut);
        EXPECT_EQ(r.status, DecodeStatus::Truncated)
            << codec->name() << " keep=" << keep;
        EXPECT_FALSE(r.message.empty());
        EXPECT_LE(r.errorBit, keep * 8);
        EXPECT_THROW(codec->decode(cut), std::runtime_error);
    }
}

TEST(ProfiledCodec, TruncatedStreamReportsCleanError)
{
    auto codec = makeProfiledCodec(11);
    TensorI16 t = randomTensor(5, 2, 4, 8, 1024);
    EncodedTensor enc = codec->encode(t);
    enc.bytes.resize(enc.bytes.size() / 2);
    EXPECT_EQ(codec->tryDecode(enc).status, DecodeStatus::Truncated);
}

TEST(DeltaDCodec, RejectsOverwideGroupHeader)
{
    // A 5-bit DeltaD group header can declare up to 32-bit fields, but
    // deltas of int16 data never need more than 17: anything wider
    // cannot come from the encoder and must be rejected as BadHeader.
    BitWriter bw;
    bw.write(31, 5); // declares 32-bit fields
    for (int i = 0; i < 16; ++i)
        bw.write(0xFFFFFFFFu, 32);
    EncodedTensor enc;
    enc.shape = {1, 1, 16};
    enc.bits = bw.bitCount();
    enc.bytes = bw.bytes();
    DecodeResult r = makeDeltaDCodec(16)->tryDecode(enc);
    EXPECT_EQ(r.status, DecodeStatus::BadHeader);
    EXPECT_EQ(r.errorBit, 0u);
    EXPECT_THROW(makeDeltaDCodec(16)->decode(enc), std::runtime_error);

    // The widest legal header (17-bit fields) still decodes.
    BitWriter ok;
    ok.write(16, 5); // 17-bit fields
    for (int i = 0; i < 16; ++i)
        ok.writeSigned(-40000, 17); // a legal 17-bit delta
    EncodedTensor legal;
    legal.shape = {1, 1, 16};
    legal.bits = ok.bitCount();
    legal.bytes = ok.bytes();
    EXPECT_TRUE(makeDeltaDCodec(16)->tryDecode(legal).ok());
}

TEST(HardenedDecode, PartialPrefixReportedOnTruncation)
{
    auto codec = makeRawDCodec(16);
    TensorI16 t = randomTensor(22, 1, 2, 32);
    EncodedTensor enc = codec->encode(t);
    enc.bytes.resize(enc.bytes.size() / 2);
    DecodeResult r = codec->tryDecode(enc);
    ASSERT_EQ(r.status, DecodeStatus::Truncated);
    EXPECT_GT(r.valuesDecoded, 0u);
    EXPECT_LT(r.valuesDecoded, t.size());
}

TEST(DecodeStatusStrings, AllNamed)
{
    EXPECT_EQ(to_string(DecodeStatus::Ok), "Ok");
    EXPECT_EQ(to_string(DecodeStatus::BadShape), "BadShape");
    EXPECT_EQ(to_string(DecodeStatus::Truncated), "Truncated");
    EXPECT_EQ(to_string(DecodeStatus::BadHeader), "BadHeader");
}

// ---------------------------------------------------------------
// Size accounting
// ---------------------------------------------------------------

TEST(CodecSizes, NoCompressionIsExactly16BitsPerValue)
{
    TensorI16 t = randomTensor(6);
    EXPECT_DOUBLE_EQ(makeNoCompressionCodec()->bitsPerValue(t), 16.0);
}

TEST(CodecSizes, RawDWithMetadataMatchesFormula)
{
    // A tensor whose every group needs exactly 9 bits.
    TensorI16 t(1, 1, 64);
    for (int x = 0; x < 64; ++x)
        t.at(0, 0, x) = 200; // 9 bits
    double bpv = makeRawDCodec(16)->bitsPerValue(t);
    EXPECT_NEAR(bpv, 9.0 + 4.0 / 16.0, 1e-12);
}

TEST(CodecSizes, RlezCompressesZeroRuns)
{
    TensorI16 t(1, 1, 160, 0);
    for (int x = 0; x < 160; x += 16)
        t.at(0, 0, x) = 300;
    double bpv = makeRlezCodec()->bitsPerValue(t);
    EXPECT_LT(bpv, 3.0); // 10 entries of 20 bits for 160 values
}

TEST(CodecSizes, DeltaDBeatsRawDOnSmoothData)
{
    TensorI16 t(2, 8, 64);
    Rng rng(8);
    for (int c = 0; c < 2; ++c) {
        for (int y = 0; y < 8; ++y) {
            std::int32_t level = 4000;
            for (int x = 0; x < 64; ++x) {
                level += static_cast<std::int32_t>(rng.below(7)) - 3;
                t.at(c, y, x) = static_cast<std::int16_t>(level);
            }
        }
    }
    EXPECT_LT(makeDeltaDCodec(16)->bitsPerValue(t),
              makeRawDCodec(16)->bitsPerValue(t));
}

TEST(CodecSizes, SmallerGroupsAdaptBetterBeforeMetadata)
{
    // On data with isolated spikes, small groups quarantine the wide
    // values. Verify RawD8 payload adapts better than RawD256 overall
    // on spiky data despite its higher metadata rate.
    TensorI16 t(1, 1, 1024, 1);
    for (int x = 0; x < 1024; x += 128)
        t.at(0, 0, x) = 30000;
    EXPECT_LT(makeRawDCodec(8)->bitsPerValue(t),
              makeRawDCodec(256)->bitsPerValue(t));
}

TEST(DeltaDCodec, StreamMatchesScalarOracleAcrossGroupSizes)
{
    // Group sizes 1..33 cross every chunk boundary of the dispatched
    // group-header reduction (common/simd.hh). Whatever table the
    // host dispatched to, the emitted stream must match a reference
    // parse built purely from the scalar bitsNeeded(): per group, a
    // 5-bit header holding max bitsNeeded of the X-delta stream, then
    // that many bits per field.
    TensorI16 t = sparseSmoothTensor(77, 3, 5, 23);
    std::vector<std::int32_t> stream;
    for (int c = 0; c < t.channels(); ++c) {
        for (int y = 0; y < t.height(); ++y) {
            std::int32_t prev = 0;
            for (int x = 0; x < t.width(); ++x) {
                const std::int32_t cur = t.at(c, y, x);
                stream.push_back(x == 0 ? cur : cur - prev);
                prev = cur;
            }
        }
    }
    for (int g = 1; g <= 33; ++g) {
        auto codec = makeDeltaDCodec(g);
        EncodedTensor enc = codec->encode(t);
        ASSERT_EQ(codec->decode(enc), t) << codec->name();
        BitReader br(enc.bytes);
        std::size_t hidx = 0;
        const auto group = static_cast<std::size_t>(g);
        for (std::size_t start = 0; start < stream.size();
             start += group) {
            const std::size_t len =
                std::min(group, stream.size() - start);
            int want_bits = 1;
            for (std::size_t i = 0; i < len; ++i)
                want_bits =
                    std::max(want_bits, bitsNeeded(stream[start + i]));
            ASSERT_LT(hidx, enc.headerBits.size()) << codec->name();
            ASSERT_EQ(enc.headerBits[hidx].first, br.bitPosition())
                << codec->name();
            // diffy-lint: allow(R4): scalar format oracle parses raw bits
            const int bits = static_cast<int>(br.read(5)) + 1;
            ASSERT_EQ(bits, want_bits)
                << codec->name() << " group at " << start;
            for (std::size_t i = 0; i < len; ++i)
                // diffy-lint: allow(R4): scalar format oracle parses raw bits
                ASSERT_EQ(br.readSigned(bits), stream[start + i])
                    << codec->name() << " field " << start + i;
            ++hidx;
        }
        EXPECT_EQ(hidx, enc.headerBits.size()) << codec->name();
        EXPECT_EQ(br.bitPosition(), enc.bits) << codec->name();
    }
}

TEST(CodecSizes, MeasuredBitsMatchBufferLength)
{
    TensorI16 t = sparseSmoothTensor(10);
    for (auto scheme : {Compression::Rlez, Compression::Rle,
                        Compression::RawD16, Compression::DeltaD16}) {
        auto codec = makeCodec(scheme);
        EncodedTensor enc = codec->encode(t);
        EXPECT_LE(enc.bits, enc.bytes.size() * 8);
        EXPECT_GT(enc.bits, (enc.bytes.size() - 1) * 8);
    }
}

TEST(MakeCodec, MapsEnumValues)
{
    EXPECT_EQ(makeCodec(Compression::None)->name(), "NoCompression");
    EXPECT_EQ(makeCodec(Compression::Ideal)->name(), "NoCompression");
    EXPECT_EQ(makeCodec(Compression::Rlez)->name(), "RLEz");
    EXPECT_EQ(makeCodec(Compression::Profiled, 9)->name(), "Profiled9");
    EXPECT_EQ(makeCodec(Compression::DeltaD16)->name(), "DeltaD16");
    EXPECT_EQ(makeCodec(Compression::RawD256)->name(), "RawD256");
}

TEST(CodecOnRealTrace, PaperOrderingHolds)
{
    // On a real CI-DNN trace: DeltaD16 < RawD16 < NoCompression.
    SceneParams p;
    p.kind = SceneKind::Nature;
    p.width = 24;
    p.height = 24;
    p.seed = 12;
    NetworkTrace trace = runNetwork(makeIrCnn(), renderScene(p));
    double delta = 0.0, raw = 0.0, none = 0.0;
    for (const auto &layer : trace.layers) {
        delta += makeDeltaDCodec(16)->bitsPerValue(layer.imap);
        raw += makeRawDCodec(16)->bitsPerValue(layer.imap);
        none += makeNoCompressionCodec()->bitsPerValue(layer.imap);
    }
    EXPECT_LT(delta, raw);
    EXPECT_LT(raw, none);
}

// --------------------------------------------------- stream integrity

TEST(Crc32c, MatchesKnownVectorAndChains)
{
    // RFC 3720 check value for the Castagnoli polynomial.
    const char digits[] = "123456789";
    EXPECT_EQ(crc32c(reinterpret_cast<const std::uint8_t *>(digits), 9),
              0xE3069283u);
    EXPECT_EQ(crc32c(nullptr, 0), 0u);
    // Incremental chaining must equal the one-shot CRC.
    const auto *d = reinterpret_cast<const std::uint8_t *>(digits);
    std::uint32_t chained = crc32c(d, 4);
    chained = crc32c(d + 4, 5, chained);
    EXPECT_EQ(chained, 0xE3069283u);
}

TEST(EncodedIntegrity, SealDetectsPayloadCorruption)
{
    auto codec = makeDeltaDCodec(16);
    EncodedTensor enc = codec->encode(randomTensor(21));
    EXPECT_TRUE(verifyEncoded(enc)) << "unsealed streams vacuously pass";
    sealEncoded(enc);
    EXPECT_TRUE(verifyEncoded(enc));
    enc.bytes[enc.bytes.size() / 2] ^= 0x10;
    EXPECT_FALSE(verifyEncoded(enc));
}

TEST(EncodedIntegrity, TryDecodeVerifiedReportsBadChecksum)
{
    auto codec = makeDeltaDCodec(16);
    TensorI16 t = randomTensor(22);
    EncodedTensor enc = codec->encode(t);
    sealEncoded(enc);
    EXPECT_EQ(codec->tryDecodeVerified(enc).status, DecodeStatus::Ok);
    enc.bytes[3] ^= 0x80;
    DecodeResult r = codec->tryDecodeVerified(enc);
    EXPECT_EQ(r.status, DecodeStatus::BadChecksum);
    EXPECT_EQ(r.valuesDecoded, 0u)
        << "corruption must be detected before reconstruction";
    // decode() surfaces the same detection as a typed throw.
    try {
        codec->decode(enc);
        FAIL() << "expected DecodeError";
    } catch (const DecodeError &e) {
        EXPECT_EQ(e.status(), DecodeStatus::BadChecksum);
    }
}

TEST(EncodedIntegrity, SaveLoadRoundTripIsSealedAndLossless)
{
    auto codec = makeDeltaDCodec(16);
    TensorI16 t = randomTensor(23);
    EncodedTensor enc = codec->encode(t);
    std::ostringstream os;
    saveEncoded(enc, os);
    std::istringstream is(os.str());
    EncodedTensor back = loadEncoded(is);
    EXPECT_TRUE(back.sealed);
    EXPECT_EQ(back.bits, enc.bits);
    EXPECT_EQ(back.headerBits, enc.headerBits);
    EXPECT_EQ(codec->decode(back), t);
}

TEST(EncodedIntegrity, LoadRejectsTruncationAndCorruption)
{
    auto codec = makeDeltaDCodec(16);
    EncodedTensor enc = codec->encode(randomTensor(24));
    std::ostringstream os;
    saveEncoded(enc, os);
    const std::string wire = os.str();

    // Truncated stream: structured Truncated error, never a crash.
    std::istringstream shortStream(wire.substr(0, wire.size() / 2));
    try {
        loadEncoded(shortStream);
        FAIL() << "expected DecodeError";
    } catch (const DecodeError &e) {
        EXPECT_EQ(e.status(), DecodeStatus::Truncated);
    }

    // Flipped payload byte (the footer is the trailing u32 CRC plus
    // u64 bit count, so size-13 is the payload's last byte): the
    // footer CRC catches it at load time.
    std::string corrupt = wire;
    corrupt[corrupt.size() - 13] ^= 0x04;
    std::istringstream corruptStream(corrupt);
    try {
        loadEncoded(corruptStream);
        FAIL() << "expected DecodeError";
    } catch (const DecodeError &e) {
        EXPECT_EQ(e.status(), DecodeStatus::BadChecksum);
    }

    // Wrong magic: rejected before anything is parsed.
    std::string badMagic = wire;
    badMagic[0] ^= 0xFF;
    std::istringstream badMagicStream(badMagic);
    EXPECT_THROW(loadEncoded(badMagicStream), DecodeError);
}

} // namespace
} // namespace diffy
