/**
 * @file
 * Tests for the analysis module: term statistics, entropy
 * measurements, precision profiling, and heatmaps (Figs 1-4,
 * Table III support).
 */

#include <gtest/gtest.h>

#include "analysis/entropy.hh"
#include "analysis/heatmap.hh"
#include "analysis/precision.hh"
#include "analysis/terms.hh"
#include "common/bitops.hh"
#include "common/rng.hh"
#include "image/synth.hh"
#include "nn/executor.hh"
#include "nn/models.hh"

namespace diffy
{
namespace
{

TensorI16
rampTensor()
{
    // One row per channel, slowly increasing: deltas are small.
    TensorI16 t(2, 2, 8);
    for (int c = 0; c < 2; ++c) {
        for (int y = 0; y < 2; ++y) {
            for (int x = 0; x < 8; ++x)
                t.at(c, y, x) = static_cast<std::int16_t>(100 + 2 * x);
        }
    }
    return t;
}

NetworkTrace
ircnnTrace(int size = 24)
{
    SceneParams p;
    p.kind = SceneKind::Nature;
    p.width = size;
    p.height = size;
    p.seed = 31;
    return runNetwork(makeIrCnn(), renderScene(p));
}

TEST(TermStats, RawCountsMatchManual)
{
    TensorI16 t(1, 1, 3);
    t.at(0, 0, 0) = 0;
    t.at(0, 0, 1) = 4;  // 1 term
    t.at(0, 0, 2) = 7;  // 8-1: 2 terms
    TermStats s = rawTermStats(t);
    EXPECT_EQ(s.values, 3u);
    EXPECT_EQ(s.zeroValues, 1u);
    EXPECT_EQ(s.totalTerms, 3u);
    EXPECT_NEAR(s.meanTerms(), 1.0, 1e-12);
    EXPECT_NEAR(s.sparsity(), 1.0 / 3.0, 1e-12);
}

TEST(TermStats, DeltaStreamUsesRowLeadingRaw)
{
    TensorI16 t = rampTensor();
    TermStats raw = rawTermStats(t);
    TermStats delta = deltaTermStats(t);
    EXPECT_EQ(raw.values, delta.values);
    // Ramp deltas are all 2 (one term) except row heads.
    EXPECT_LT(delta.totalTerms, raw.totalTerms);
    // Row heads: value 100 -> boothTerms(100)=3; 4 rows total.
    std::uint64_t expected =
        4 * static_cast<std::uint64_t>(boothTerms(100)) + 4 * 7 * 1;
    EXPECT_EQ(delta.totalTerms, expected);
}

TEST(TermStats, MergeAccumulates)
{
    TermStats a = rawTermStats(rampTensor());
    TermStats b = rawTermStats(rampTensor());
    std::uint64_t single = a.totalTerms;
    a.merge(b);
    EXPECT_EQ(a.totalTerms, 2 * single);
    EXPECT_EQ(a.values, 2 * b.values);
}

TEST(WorkPotential, OrderingHoldsOnCorrelatedTraces)
{
    NetworkTrace trace = ircnnTrace();
    WorkPotential wp = networkWorkPotential(trace);
    // ALL processes 16 terms/value; effectual raw fewer; deltas fewer
    // still on spatially correlated CI-DNN data.
    EXPECT_GT(wp.rawSpeedup(), 1.0);
    EXPECT_GT(wp.deltaSpeedup(), wp.rawSpeedup());
    // Zero-term deltas cost nothing in the potential model, so the
    // bound exceeds 16; it must still be finite and sane.
    EXPECT_LT(wp.deltaSpeedup(), 64.0);
}

TEST(WorkPotential, LayerWeightsScaleWithFilters)
{
    NetworkTrace trace = ircnnTrace(16);
    WorkPotential l0 = layerWorkPotential(trace.layers[0]);
    // Same imap, double the filters => double the absolute work.
    LayerTrace doubled = trace.layers[0];
    doubled.spec.outChannels *= 2;
    WorkPotential l1 = layerWorkPotential(doubled);
    EXPECT_NEAR(l1.allTerms / l0.allTerms, 2.0, 1e-9);
    EXPECT_NEAR(l1.deltaSpeedup(), l0.deltaSpeedup(), 1e-9);
}

TEST(Entropy, DegenerateTensorHasZeroEntropy)
{
    TensorI16 t(1, 4, 16, 5);
    EntropyAccumulator acc;
    acc.addTensor(t);
    EXPECT_DOUBLE_EQ(acc.valueEntropy(), 0.0);
    EXPECT_DOUBLE_EQ(acc.deltaEntropy(), 0.0);
    EXPECT_DOUBLE_EQ(acc.conditionalEntropy(), 0.0);
}

TEST(Entropy, DeltaEntropyBelowValueEntropyOnCorrelatedData)
{
    NetworkTrace trace = ircnnTrace();
    EntropyAccumulator acc;
    acc.addTrace(trace);
    EXPECT_GT(acc.valueEntropy(), 0.0);
    EXPECT_LT(acc.deltaEntropy(), acc.valueEntropy());
    EXPECT_LT(acc.conditionalEntropy(), acc.valueEntropy());
    EXPECT_GT(acc.deltaRatio(), 1.0);
    EXPECT_GT(acc.conditionalRatio(), 1.0);
}

TEST(Entropy, ConditionalNeverExceedsDeltaEntropy)
{
    // H(A|A') <= H(A - A'): knowing A' can only help more than the
    // fixed delta transform.
    NetworkTrace trace = ircnnTrace();
    EntropyAccumulator acc;
    acc.addTrace(trace);
    EXPECT_LE(acc.conditionalEntropy(), acc.deltaEntropy() + 1e-9);
}

TEST(Entropy, MergeMatchesCombinedStream)
{
    NetworkTrace t1 = ircnnTrace(16);
    EntropyAccumulator a, b, both;
    a.addTensor(t1.layers[1].imap);
    b.addTensor(t1.layers[2].imap);
    both.addTensor(t1.layers[1].imap);
    both.addTensor(t1.layers[2].imap);
    a.merge(b);
    EXPECT_NEAR(a.valueEntropy(), both.valueEntropy(), 1e-12);
    EXPECT_NEAR(a.conditionalEntropy(), both.conditionalEntropy(), 1e-12);
}

TEST(PrecisionProfiler, CoversRequestedQuantile)
{
    TensorI16 t(1, 1, 1000);
    // 999 small values (4 bits), one 12-bit outlier.
    for (int x = 0; x < 1000; ++x)
        t.at(0, 0, x) = 5;
    t.at(0, 0, 500) = 2000;
    PrecisionProfiler prof;
    prof.addLayer(0, t);
    EXPECT_EQ(prof.layerPrecision(0, 0.99), bitsNeeded(5));
    EXPECT_EQ(prof.layerPrecision(0, 1.0), bitsNeeded(2000));
}

TEST(PrecisionProfiler, ProfileShapeMatchesNetwork)
{
    NetworkTrace trace = ircnnTrace();
    PrecisionProfiler prof;
    prof.addTrace(trace);
    auto profile = prof.profile();
    ASSERT_EQ(profile.size(), trace.layers.size());
    for (int p : profile) {
        EXPECT_GE(p, 4);
        EXPECT_LE(p, 16);
    }
}

TEST(PrecisionProfiler, EmptyLayerDefaultsTo16)
{
    PrecisionProfiler prof;
    EXPECT_EQ(prof.layerPrecision(3), 16);
}

TEST(DynamicGroupBits, DeltasCheaperThanRawOnRamps)
{
    TensorI16 t(1, 4, 64);
    for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 64; ++x)
            t.at(0, y, x) = static_cast<std::int16_t>(1000 + 3 * x);
    }
    double raw = dynamicGroupBits(t, 16);
    double delta = dynamicGroupBitsDeltas(t, 16);
    EXPECT_LT(delta, raw);
    EXPECT_GE(delta, 1.0);
}

TEST(DynamicGroupBits, GroupOfOneIsPerValueMinimum)
{
    TensorI16 t(1, 1, 4);
    t.at(0, 0, 0) = 0;   // 1 bit
    t.at(0, 0, 1) = 1;   // 2 bits
    t.at(0, 0, 2) = -1;  // 1 bit
    t.at(0, 0, 3) = 100; // 8 bits
    EXPECT_NEAR(dynamicGroupBits(t, 1), (1 + 2 + 1 + 8) / 4.0, 1e-12);
    // Whole-tensor group takes the max width.
    EXPECT_NEAR(dynamicGroupBits(t, 4), 8.0, 1e-12);
}

TEST(Heatmap, DeltaMagnitudePeaksAtEdges)
{
    // Step edge at x = 8.
    TensorI16 t(1, 8, 16, 0);
    for (int y = 0; y < 8; ++y) {
        for (int x = 8; x < 16; ++x)
            t.at(0, y, x) = 1024;
    }
    Heatmap d = deltaMagnitudeHeatmap(t);
    for (int y = 0; y < 8; ++y) {
        EXPECT_DOUBLE_EQ(d.at(y, 8), 1024.0);
        EXPECT_DOUBLE_EQ(d.at(y, 4), 0.0);
        EXPECT_DOUBLE_EQ(d.at(y, 12), 0.0);
    }
}

TEST(Heatmap, TermsMapsMatchBoothCounts)
{
    TensorI16 t(2, 1, 2);
    t.at(0, 0, 0) = 7;
    t.at(1, 0, 0) = 1;
    t.at(0, 0, 1) = 7;
    t.at(1, 0, 1) = 0;
    Heatmap raw = rawTermsHeatmap(t);
    EXPECT_DOUBLE_EQ(raw.at(0, 0), (2 + 1) / 2.0);
    Heatmap delta = deltaTermsHeatmap(t);
    // x=1 deltas: 0 and -1 -> terms 0 and 1.
    EXPECT_DOUBLE_EQ(delta.at(0, 1), (0 + 1) / 2.0);
}

TEST(Heatmap, AsciiRenderHasRequestedShape)
{
    NetworkTrace trace = ircnnTrace(32);
    Heatmap map = rawMagnitudeHeatmap(trace.layers[2].imap);
    std::string art = renderAscii(map, 8, 16);
    // 8 lines of 16 glyphs.
    EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 8);
    EXPECT_EQ(art.size(), 8u * 17);
}

TEST(Heatmap, AsciiRenderOfFlatMapIsEmpty)
{
    Heatmap flat;
    flat.height = 4;
    flat.width = 4;
    flat.values.assign(16, 1.0);
    EXPECT_TRUE(renderAscii(flat, 2, 2).empty());
}

} // namespace
} // namespace diffy
