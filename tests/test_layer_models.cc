/**
 * @file
 * Tests for the layer descriptors and the model zoo, pinning the
 * structural invariants of the paper's Table I.
 */

#include <gtest/gtest.h>

#include "nn/models.hh"

namespace diffy
{
namespace
{

TEST(ConvLayerSpec, SamePaddingPreservesResolution)
{
    ConvLayerSpec l;
    l.kernel = 3;
    l.stride = 1;
    l.dilation = 1;
    EXPECT_EQ(l.outDim(64), 64);
    l.dilation = 4; // IRCNN-style dilation
    EXPECT_EQ(l.effectiveKernel(), 9);
    EXPECT_EQ(l.outDim(64), 64);
}

TEST(ConvLayerSpec, StridedOutputDims)
{
    ConvLayerSpec l;
    l.kernel = 11;
    l.stride = 4;
    EXPECT_EQ(l.effectiveKernel(), 11);
    EXPECT_EQ(l.samePad(), 5);
    // (224 + 10 - 11)/4 + 1 = 56
    EXPECT_EQ(l.outDim(224), 56);
}

TEST(ConvLayerSpec, WorkAndFootprintAccessors)
{
    ConvLayerSpec l;
    l.inChannels = 64;
    l.outChannels = 64;
    l.kernel = 3;
    EXPECT_EQ(l.macsPerOutput(), 64u * 9);
    EXPECT_EQ(l.filterBytes(), 64u * 9 * 2);       // 1.125 KB
    EXPECT_EQ(l.layerWeightBytes(), 64u * 64 * 9 * 2); // 72 KB
}

/** Table I row checks for each CI-DNN. */
struct TableOneRow
{
    const char *name;
    int convLayers;
    int reluLayers;
    std::size_t maxFilterBytes;
    std::size_t maxLayerWeightKb;
};

class TableOne : public ::testing::TestWithParam<TableOneRow>
{};

TEST_P(TableOne, StructuralInvariantsMatchPaper)
{
    const TableOneRow &row = GetParam();
    NetworkSpec net = makeNetwork(row.name);
    EXPECT_EQ(net.convLayerCount(), row.convLayers);
    EXPECT_EQ(net.reluLayerCount(), row.reluLayers);
    EXPECT_EQ(net.maxFilterBytes(), row.maxFilterBytes);
    EXPECT_EQ(net.maxLayerWeightBytes() / 1024, row.maxLayerWeightKb);
    EXPECT_EQ(net.netClass, NetClass::CiDnn);
}

INSTANTIATE_TEST_SUITE_P(
    CiDnns, TableOne,
    ::testing::Values(
        // name, conv, relu, max filter bytes, max layer weight KB
        TableOneRow{"DnCNN", 20, 19, 1152, 72},
        TableOneRow{"FFDNet", 10, 9, 1728, 162},
        TableOneRow{"IRCNN", 7, 6, 1152, 72},
        TableOneRow{"JointNet", 19, 16, 1152, 144},
        TableOneRow{"VDSR", 20, 19, 1152, 72}),
    [](const auto &name_info) { return std::string(name_info.param.name); });

TEST(ModelZoo, SuiteOrderMatchesPaper)
{
    auto suite = ciDnnSuite();
    ASSERT_EQ(suite.size(), 5u);
    EXPECT_EQ(suite[0].name, "DnCNN");
    EXPECT_EQ(suite[1].name, "FFDNet");
    EXPECT_EQ(suite[2].name, "IRCNN");
    EXPECT_EQ(suite[3].name, "JointNet");
    EXPECT_EQ(suite[4].name, "VDSR");
}

TEST(ModelZoo, IrcnnDilationLadder)
{
    NetworkSpec net = makeIrCnn();
    const int expected[7] = {1, 2, 3, 4, 3, 2, 1};
    ASSERT_EQ(net.layers.size(), 7u);
    for (int i = 0; i < 7; ++i)
        EXPECT_EQ(net.layers[i].dilation, expected[i]) << "layer " << i;
}

TEST(ModelZoo, FfdNetRunsAtHalfResolutionWith15Channels)
{
    NetworkSpec net = makeFfdNet();
    EXPECT_EQ(net.inputChannels, 15);
    for (const auto &layer : net.layers)
        EXPECT_EQ(layer.resolutionDivisor, 2) << layer.name;
}

TEST(ModelZoo, VdsrIsSingleChannel)
{
    NetworkSpec net = makeVdsr();
    EXPECT_EQ(net.inputChannels, 1);
    EXPECT_EQ(net.layers.front().inChannels, 1);
    EXPECT_EQ(net.layers.back().outChannels, 1);
}

TEST(ModelZoo, ClassificationSuiteHasNativeResolutions)
{
    for (const auto &net : classificationSuite()) {
        EXPECT_GT(net.nativeResolution, 0) << net.name;
        EXPECT_NE(net.netClass, NetClass::CiDnn) << net.name;
    }
}

TEST(ModelZoo, AlexNetFirstLayerStride4)
{
    NetworkSpec net = makeAlexNetConv();
    EXPECT_EQ(net.layers.front().stride, 4);
    EXPECT_EQ(net.layers.front().kernel, 11);
}

TEST(ModelZoo, ChannelChainsAreConsistent)
{
    // Within a constant-resolution run of layers, out channels of one
    // layer must feed the next (resampling boundaries may repack).
    for (const auto &net : ciDnnSuite()) {
        for (std::size_t i = 1; i < net.layers.size(); ++i) {
            const auto &prev = net.layers[i - 1];
            const auto &cur = net.layers[i];
            if (prev.resolutionDivisor == cur.resolutionDivisor &&
                prev.stride == 1) {
                EXPECT_EQ(prev.outChannels, cur.inChannels)
                    << net.name << " layer " << i;
            }
        }
    }
}

TEST(ModelZoo, UnknownNetworkThrows)
{
    EXPECT_THROW(makeNetwork("NotANet"), std::invalid_argument);
}

TEST(ModelZoo, ZooNamesCoversBothSuitesPlusMicroServe)
{
    auto names = zooNames();
    EXPECT_EQ(names.size(), 12u);
    EXPECT_EQ(names.back(), "MicroServe");
}

TEST(ModelZoo, MicroServeIsAMinimalPerPixelNet)
{
    NetworkSpec net = makeMicroServe();
    EXPECT_EQ(makeNetwork("MicroServe").layers.size(), net.layers.size());
    EXPECT_EQ(net.inputChannels, 3);
    EXPECT_EQ(net.layers.size(), 3u);
    EXPECT_EQ(net.layers.back().outChannels, 3);
    for (const auto &layer : net.layers)
        EXPECT_EQ(layer.kernel, 3);
}

TEST(NetworkSpec, MacsPerFrameScalesWithResolution)
{
    NetworkSpec net = makeDnCnn();
    double hd = net.macsPerFrame(1080, 1920);
    double quarter = net.macsPerFrame(540, 960);
    EXPECT_NEAR(hd / quarter, 4.0, 0.05);
}

TEST(NetworkSpec, TotalWeightBytesSumsLayers)
{
    NetworkSpec net = makeIrCnn();
    std::size_t total = 0;
    for (const auto &l : net.layers)
        total += l.layerWeightBytes();
    EXPECT_EQ(net.totalWeightBytes(), total);
}

} // namespace
} // namespace diffy
