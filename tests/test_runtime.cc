/**
 * @file
 * Tests for the parallel execution runtime: thread pool lifecycle and
 * exception capture, sweep-scheduler determinism (byte-identical
 * reduction at any thread count), deterministic exception selection,
 * and single-flight concurrency of the trace cache.
 *
 * These tests are built into their own binary (diffy_runtime_tests) so
 * the ThreadSanitizer CI job can run exactly the concurrency surface.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/table.hh"
#include "core/experiment.hh"
#include "core/trace_cache.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "runtime/sweep.hh"
#include "runtime/thread_pool.hh"

namespace diffy
{
namespace
{

// ---------------------------------------------------------------- pool

TEST(ThreadPool, RunsEveryJob)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ShutdownCompletesPendingJobs)
{
    std::atomic<int> count{0};
    {
        // Two workers, many slow-ish jobs: most of the queue is still
        // pending when the destructor runs. Graceful shutdown must
        // drain it, not drop it.
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&count] {
                std::this_thread::sleep_for(std::chrono::microseconds(200));
                ++count;
            });
    }
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, WaitRethrowsJobException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("job blew up"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error is consumed: the pool stays usable afterwards.
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ShutdownDrainCapturesThrowingJobs)
{
    // Regression: a job throwing while the destructor drains the queue
    // used to be indistinguishable from a steady-state throw only by
    // luck — if capture ever moved inside the pre-drain path, the
    // exception would escape a joined worker and std::terminate. The
    // pool must survive, and an exception still pending at destruction
    // (the owner never called wait()) is dropped but counted.
    auto &reg = obs::MetricsRegistry::instance();
    const std::uint64_t dropped0 =
        reg.counter("thread_pool.dropped_exceptions").value();
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i)
            pool.submit([&ran] {
                std::this_thread::sleep_for(std::chrono::microseconds(200));
                ++ran;
                throw std::runtime_error("throw during drain");
            });
        // No wait(): destruction drains the queue while jobs throw.
    }
    EXPECT_EQ(ran.load(), 32);
    EXPECT_EQ(reg.counter("thread_pool.dropped_exceptions").value() -
                  dropped0,
              1u);
}

TEST(ThreadPool, RejectsNonPositiveThreadCount)
{
    EXPECT_THROW(ThreadPool(0), std::invalid_argument);
    EXPECT_THROW(ThreadPool(-2), std::invalid_argument);
}

// ----------------------------------------------------------- scheduler

/**
 * A deterministic stand-in workload: every job draws from its own
 * seeded RNG and does a little arithmetic, so any cross-thread state
 * leakage or order dependence changes the rendered table.
 */
std::string
renderSweepTable(int threads, std::size_t jobs)
{
    SweepScheduler scheduler(threads, /*baseSeed=*/42);
    std::vector<double> values =
        scheduler.map(jobs, [](SweepJob &job) {
            double v = 0.0;
            for (int i = 0; i < 16; ++i)
                v += job.rng.uniform();
            return v + static_cast<double>(job.index);
        });
    TextTable table("sweep");
    table.setHeader({"job", "value"});
    for (std::size_t i = 0; i < values.size(); ++i)
        table.addRow({std::to_string(i), TextTable::num(values[i], 6)});
    return table.render();
}

TEST(SweepScheduler, TableBytesIdenticalAcrossThreadCounts)
{
    std::string serial = renderSweepTable(1, 48);
    EXPECT_EQ(renderSweepTable(2, 48), serial);
    EXPECT_EQ(renderSweepTable(8, 48), serial);
}

TEST(SweepScheduler, JobSeedsAreStableAndDistinct)
{
    EXPECT_EQ(SweepScheduler::jobSeed(7, 3), SweepScheduler::jobSeed(7, 3));
    std::set<std::uint64_t> seeds;
    for (std::size_t i = 0; i < 1000; ++i)
        seeds.insert(SweepScheduler::jobSeed(7, i));
    EXPECT_EQ(seeds.size(), 1000u);
    EXPECT_NE(SweepScheduler::jobSeed(7, 0), SweepScheduler::jobSeed(8, 0));
}

TEST(SweepScheduler, LowestIndexExceptionWins)
{
    for (int threads : {1, 4}) {
        SweepScheduler scheduler(threads);
        try {
            scheduler.forEach(32, [](SweepJob &job) {
                // Several jobs fail; which one runs first depends on
                // scheduling, but the rethrown error must not.
                if (job.index == 5 || job.index == 13 || job.index == 27)
                    throw std::runtime_error(
                        "boom at job " + std::to_string(job.index));
            });
            FAIL() << "expected an exception at " << threads << " threads";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "boom at job 5")
                << "at " << threads << " threads";
        }
    }
}

TEST(SweepScheduler, RecordsTimingCounters)
{
    SweepScheduler scheduler(2);
    scheduler.forEach(8, [](SweepJob &) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
    const SweepStats stats = scheduler.stats();
    EXPECT_EQ(stats.jobs, 8u);
    EXPECT_EQ(stats.threads, 2);
    EXPECT_GT(stats.wallSeconds, 0.0);
    EXPECT_GE(stats.busySeconds, 8 * 0.001);
    EXPECT_GE(stats.maxJobSeconds, stats.minJobSeconds);
    EXPECT_GE(stats.queueWaitSeconds, 0.0);
    EXPECT_GT(stats.utilization(), 0.0);
    EXPECT_NE(stats.summary().find("8 jobs"), std::string::npos);
}

TEST(SweepScheduler, StatsAreARegistryView)
{
    // The per-run sweep histograms back stats(): the registry must
    // agree with the struct, and the next run() must reset them.
    SweepScheduler scheduler(1);
    scheduler.forEach(5, [](SweepJob &) {});
    auto &reg = obs::MetricsRegistry::instance();
    EXPECT_EQ(reg.histogram("sweep.job_seconds").snapshot().stat.count(),
              5u);
    EXPECT_EQ(scheduler.stats().jobs, 5u);

    scheduler.forEach(3, [](SweepJob &) {});
    EXPECT_EQ(reg.histogram("sweep.job_seconds").snapshot().stat.count(),
              3u);
    EXPECT_EQ(scheduler.stats().jobs, 3u);
    // The cumulative counter keeps the running total across runs.
    EXPECT_GE(reg.counter("sweep.jobs").value(), 8u);
}

TEST(SweepScheduler, TracingPreservesTableBytes)
{
    // The fig11 determinism gate with tracing enabled, in miniature:
    // the rendered table must not change when the global tracer is
    // recording, at 1 thread or several.
    std::string plain = renderSweepTable(1, 32);

    const std::string path =
        testing::TempDir() + "sweep_trace_test.json";
    obs::Tracer::global().configure(path);
    std::string traced1 = renderSweepTable(1, 32);
    std::string traced4 = renderSweepTable(4, 32);
    obs::Tracer::global().configure(""); // flush + disable

    EXPECT_EQ(traced1, plain);
    EXPECT_EQ(traced4, plain);

    // And the trace actually recorded the per-job spans.
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_NE(buffer.str().find("sweep.job"), std::string::npos);
    std::remove(path.c_str());
}

TEST(SweepScheduler, ResolveThreadCountValidates)
{
    EXPECT_EQ(SweepScheduler::resolveThreadCount(3), 3);
    EXPECT_THROW(SweepScheduler::resolveThreadCount(-1),
                 std::invalid_argument);
    EXPECT_THROW(SweepScheduler::resolveThreadCount(kMaxSweepThreads + 1),
                 std::invalid_argument);

    ::setenv("DIFFY_THREADS", "5", 1);
    EXPECT_EQ(SweepScheduler::resolveThreadCount(0), 5);
    // An explicit request wins over the environment.
    EXPECT_EQ(SweepScheduler::resolveThreadCount(2), 2);
    ::setenv("DIFFY_THREADS", "zero", 1);
    EXPECT_THROW(SweepScheduler::resolveThreadCount(0),
                 std::invalid_argument);
    ::setenv("DIFFY_THREADS", "-4", 1);
    EXPECT_THROW(SweepScheduler::resolveThreadCount(0),
                 std::invalid_argument);
    ::unsetenv("DIFFY_THREADS");
    EXPECT_EQ(SweepScheduler::resolveThreadCount(0), 1);
}

// --------------------------------------------------------- trace cache

/** Tiny network/scene pair so stub traces stay cheap. */
SceneParams
testScene(int seed)
{
    SceneParams scene;
    scene.width = 16;
    scene.height = 16;
    scene.seed = static_cast<std::uint64_t>(seed);
    return scene;
}

TEST(TraceCacheConcurrent, SingleFlightTracesOncePerKey)
{
    std::atomic<int> traceCalls{0};
    TraceCache cache(
        "", [&traceCalls](const NetworkSpec &, const SceneParams &scene,
                          const ExecutorOptions &) {
            ++traceCalls;
            // Stretch the computation so every worker is inside get()
            // for the same key while the first one still traces.
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            NetworkTrace trace;
            trace.network = "stub";
            trace.frameHeight = scene.height;
            trace.frameWidth = scene.width;
            return trace;
        });

    auto &reg = obs::MetricsRegistry::instance();
    const std::uint64_t hits0 = reg.counter("trace_cache.hits").value();
    const std::uint64_t misses0 =
        reg.counter("trace_cache.misses").value();
    const std::uint64_t waits0 =
        reg.counter("trace_cache.singleflight_waits").value();

    NetworkSpec net = makeIrCnn();
    {
        ThreadPool pool(8);
        for (int i = 0; i < 8; ++i)
            pool.submit([&] {
                NetworkTrace t = cache.get(net, testScene(1));
                EXPECT_EQ(t.network, "stub");
            });
        pool.wait();
    }
    EXPECT_EQ(traceCalls.load(), 1);
    // Exactly one requester computed; the other seven either hit the
    // installed future or lost the install race and waited on it.
    EXPECT_EQ(reg.counter("trace_cache.misses").value() - misses0, 1u);
    EXPECT_EQ((reg.counter("trace_cache.hits").value() - hits0) +
                  (reg.counter("trace_cache.singleflight_waits").value() -
                   waits0),
              7u);

    // A different key is its own flight.
    cache.get(net, testScene(2));
    EXPECT_EQ(traceCalls.load(), 2);
    // And a repeated key hits the in-memory entry.
    cache.get(net, testScene(1));
    EXPECT_EQ(traceCalls.load(), 2);
    EXPECT_GE(reg.counter("trace_cache.hits").value() - hits0, 1u);
}

TEST(TraceCacheConcurrent, FailedFlightPropagatesAndRetries)
{
    std::atomic<int> traceCalls{0};
    TraceCache cache("", [&traceCalls](const NetworkSpec &,
                                       const SceneParams &,
                                       const ExecutorOptions &)
                         -> NetworkTrace {
        if (++traceCalls == 1)
            throw std::runtime_error("transient trace failure");
        NetworkTrace trace;
        trace.network = "recovered";
        return trace;
    });
    NetworkSpec net = makeIrCnn();
    EXPECT_THROW(cache.get(net, testScene(1)), std::runtime_error);
    // The failed entry was evicted: the next get retries.
    EXPECT_EQ(cache.get(net, testScene(1)).network, "recovered");
}

// ------------------------------------------------- end-to-end sweeps

TEST(TraceSuiteParallel, MatchesSerialTraces)
{
    ExperimentParams params;
    params.crop = 24;
    params.scenes = 2;
    params.cacheDir = ""; // hermetic: no disk cache
    params.threads = 1;
    auto serial = traceSuite({makeIrCnn()}, params);
    params.threads = 4;
    auto parallel = traceSuite({makeIrCnn()}, params);

    ASSERT_EQ(parallel.size(), serial.size());
    ASSERT_EQ(parallel[0].traces.size(), serial[0].traces.size());
    for (std::size_t si = 0; si < serial[0].traces.size(); ++si) {
        const NetworkTrace &a = serial[0].traces[si];
        const NetworkTrace &b = parallel[0].traces[si];
        ASSERT_EQ(a.layers.size(), b.layers.size());
        for (std::size_t li = 0; li < a.layers.size(); ++li)
            EXPECT_EQ(a.layers[li].imap, b.layers[li].imap)
                << "scene " << si << " layer " << li;
    }
}

TEST(SweepCells, ReducesInCellOrder)
{
    ExperimentParams params;
    params.threads = 4;
    std::vector<std::size_t> cells =
        sweepCells(params, 64, [](SweepJob &job) { return job.index; });
    ASSERT_EQ(cells.size(), 64u);
    for (std::size_t i = 0; i < cells.size(); ++i)
        EXPECT_EQ(cells[i], i);
}

} // namespace
} // namespace diffy
