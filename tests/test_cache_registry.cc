/**
 * @file
 * Tests for the thread-local cache-clear registry: every production
 * memo cache is registered, hooks actually run, registration is
 * idempotent, and clearing then recomputing reproduces identical
 * results (the property SweepScheduler::run() relies on).
 */

#include <algorithm>
#include <gtest/gtest.h>

#include "common/cache_registry.hh"
#include "encode/footprint.hh"
#include "image/synth.hh"
#include "nn/executor.hh"
#include "nn/models.hh"
#include "sim/pra.hh"
#include "sim/runner.hh"

namespace diffy
{
namespace
{

int g_test_hook_runs = 0;

void
bumpTestHook()
{
    ++g_test_hook_runs;
}

bool
hasName(const std::vector<std::string> &names, const std::string &want)
{
    return std::find(names.begin(), names.end(), want) != names.end();
}

TEST(CacheRegistry, AllProductionCachesAreRegistered)
{
    // The three thread_local memo caches in the tree (diffy-lint rule
    // R2 keeps this list honest: a new cache cannot land unregistered).
    std::vector<std::string> names = registeredThreadCacheNames();
    EXPECT_TRUE(hasName(names, "sim_pra_walk"));
    EXPECT_TRUE(hasName(names, "encode_footprint_memos"));
    EXPECT_TRUE(hasName(names, "nn_executor_prepared_weights"));
    EXPECT_GE(registeredThreadCacheCount(), 3u);
    EXPECT_EQ(registeredThreadCacheCount(), names.size());
}

TEST(CacheRegistry, ClearRunsHooksAndRegistrationIsIdempotent)
{
    ASSERT_TRUE(registerThreadCacheClear("test_hook", bumpTestHook));
    const std::size_t count = registeredThreadCacheCount();
    // Re-registering the same (name, fn) pair is a no-op.
    ASSERT_TRUE(registerThreadCacheClear("test_hook", bumpTestHook));
    EXPECT_EQ(registeredThreadCacheCount(), count);

    const int before = g_test_hook_runs;
    clearRegisteredThreadCaches();
    EXPECT_EQ(g_test_hook_runs, before + 1);
}

TEST(CacheRegistry, ClearThenRecomputeIsByteIdentical)
{
    SceneParams p;
    p.kind = SceneKind::Nature;
    p.width = 24;
    p.height = 24;
    p.seed = 71;
    NetworkTrace trace = runNetwork(makeDnCnn(), renderScene(p));

    // Warm the footprint memos and the pallet-walk cache.
    const double warm_bits =
        measureFootprint(trace, Compression::DeltaD16).totalBits();
    LayerComputeStats warm = simulateTermSerialLayer(
        trace.layers[0], defaultDiffyConfig(), true, WalkCost::BoothTerms);

    // Cold recompute after a registry-wide clear must reproduce the
    // exact same numbers — the memoized functions are pure, which is
    // what makes the sweep scheduler's setup-time clear safe.
    clearRegisteredThreadCaches();
    EXPECT_EQ(measureFootprint(trace, Compression::DeltaD16).totalBits(),
              warm_bits);
    LayerComputeStats cold = simulateTermSerialLayer(
        trace.layers[0], defaultDiffyConfig(), true, WalkCost::BoothTerms);
    EXPECT_EQ(cold.computeCycles, warm.computeCycles);
    EXPECT_EQ(cold.usefulSlots, warm.usefulSlots);

    // The individual hooks are also exposed directly (benchmarks use
    // them for cold-cache measurement); calling them must be safe on
    // an already-cold cache.
    clearWalkCache();
    clearFootprintCaches();
    clearPreparedWeightsCache();
    EXPECT_EQ(measureFootprint(trace, Compression::DeltaD16).totalBits(),
              warm_bits);
}

} // namespace
} // namespace diffy
