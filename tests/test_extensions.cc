/**
 * @file
 * Tests for the extension components: the Dynamic Stripes
 * precision-serial model (+ its differential variant, the paper's
 * related-work proposal) and Y-direction differential convolution.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/differential_conv.hh"
#include "image/synth.hh"
#include "nn/executor.hh"
#include "nn/models.hh"
#include "sim/pra.hh"
#include "sim/stripes.hh"
#include "sim/vaa.hh"

namespace diffy
{
namespace
{

NetworkTrace
sceneTrace(const NetworkSpec &net, int size = 24, std::uint64_t seed = 61)
{
    SceneParams p;
    p.kind = SceneKind::Nature;
    p.width = size;
    p.height = size;
    p.seed = seed;
    return runNetwork(net, renderScene(p));
}

LayerTrace
uniformLayer(std::int16_t value, int channels = 16, int dim = 8,
             int filters = 64)
{
    LayerTrace lt;
    lt.spec.name = "uniform";
    lt.spec.inChannels = channels;
    lt.spec.outChannels = filters;
    lt.spec.kernel = 3;
    lt.imap = TensorI16(channels, dim, dim, value);
    lt.weights = FilterBankI16(filters, channels, 3, 3, 1);
    return lt;
}

TEST(StripesSim, CostIsBitWidthNotTermCount)
{
    // 0b100000001 = 257: 10 bits two's complement (9 magnitude +
    // sign) but only 2 Booth terms. Stripes must charge 10 cycles per
    // step where PRA charges 2.
    AcceleratorConfig cfg = defaultPraConfig();
    LayerTrace lt = uniformLayer(257);
    double stripes =
        simulateStripesLayer(lt, cfg).computeCycles;
    double pra = simulatePraLayer(lt, cfg).computeCycles;
    // 66 interior steps (8x8 map): 10 vs 2 cycles; 6 padding steps of 1.
    EXPECT_DOUBLE_EQ(stripes, 6.0 + 66.0 * 10.0);
    EXPECT_DOUBLE_EQ(pra, 6.0 + 66.0 * 2.0);
}

TEST(StripesSim, NeverFasterThanPra)
{
    // Booth terms <= bit width for every value, so PRA is a strict
    // refinement of DS at equal geometry.
    NetworkTrace trace = sceneTrace(makeIrCnn());
    AcceleratorConfig cfg = defaultPraConfig();
    auto ds = simulateStripes(trace, cfg);
    auto pra = simulatePra(trace, cfg);
    for (std::size_t i = 0; i < ds.layers.size(); ++i) {
        EXPECT_GE(ds.layers[i].computeCycles + 1e-9,
                  pra.layers[i].computeCycles)
            << i;
    }
}

TEST(StripesSim, NeverSlowerThanVaa)
{
    // Width <= 16 bits, so DS matches or beats the value-agnostic
    // design (Stripes' original guarantee).
    NetworkTrace trace = sceneTrace(makeDnCnn(), 20);
    AcceleratorConfig cfg = defaultPraConfig();
    auto ds = simulateStripes(trace, cfg);
    auto vaa = simulateVaa(trace, defaultVaaConfig());
    for (std::size_t i = 0; i < ds.layers.size(); ++i) {
        EXPECT_LE(ds.layers[i].computeCycles,
                  vaa.layers[i].computeCycles * 1.001)
            << i;
    }
}

TEST(StripesSim, DeltaVariantWinsOnCorrelatedTraces)
{
    // The paper's related-work proposal: deltas need fewer bits, so a
    // differential Dynamic Stripes outruns the raw one.
    NetworkTrace trace = sceneTrace(makeDnCnn(), 20);
    AcceleratorConfig cfg = defaultPraConfig();
    double raw = simulateStripes(trace, cfg, false).totalComputeCycles();
    double delta =
        simulateStripes(trace, cfg, true).totalComputeCycles();
    EXPECT_LT(delta, raw);
}

TEST(StripesSim, OrderingAcrossAllFourDesigns)
{
    // VAA >= DS >= DS+delta and VAA >= PRA >= Diffy in cycles.
    NetworkTrace trace = sceneTrace(makeIrCnn());
    AcceleratorConfig cfg = defaultPraConfig();
    double vaa =
        simulateVaa(trace, defaultVaaConfig()).totalComputeCycles();
    double ds = simulateStripes(trace, cfg).totalComputeCycles();
    double dsd = simulateStripes(trace, cfg, true).totalComputeCycles();
    double pra = simulatePra(trace, cfg).totalComputeCycles();
    EXPECT_LE(ds, vaa * 1.001);
    EXPECT_LT(dsd, ds);
    EXPECT_LE(pra, ds * 1.001);
}

// ----------------------------------------------------------------
// Y-direction differential convolution
// ----------------------------------------------------------------

TensorI16
randomImap(std::uint64_t seed, int c, int h, int w, int bound = 2000)
{
    Rng rng(seed);
    TensorI16 t(c, h, w);
    for (std::size_t i = 0; i < t.size(); ++i) {
        t.data()[i] = static_cast<std::int16_t>(
            static_cast<std::int32_t>(rng.below(2 * bound)) - bound);
    }
    return t;
}

FilterBankI16
randomBank(std::uint64_t seed, int k_filters, int c, int k)
{
    Rng rng(seed);
    FilterBankI16 bank(k_filters, c, k, k);
    for (std::size_t i = 0; i < bank.size(); ++i) {
        bank.data()[i] = static_cast<std::int16_t>(
            static_cast<std::int32_t>(rng.below(600)) - 300);
    }
    return bank;
}

struct YCase
{
    int c, h, w, f, k, stride, dilation;
};

class DifferentialYExactness : public ::testing::TestWithParam<YCase>
{};

TEST_P(DifferentialYExactness, MatchesDirect)
{
    const YCase &cc = GetParam();
    TensorI16 imap = randomImap(
        41 + static_cast<std::uint64_t>(cc.stride * 10 + cc.dilation),
        cc.c, cc.h, cc.w);
    FilterBankI16 bank = randomBank(43, cc.f, cc.c, cc.k);
    EXPECT_EQ(convolveDirect(imap, bank, cc.stride, cc.dilation),
              convolveDifferentialY(imap, bank, cc.stride, cc.dilation));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DifferentialYExactness,
    ::testing::Values(YCase{1, 8, 8, 1, 3, 1, 1},
                      YCase{3, 12, 10, 4, 3, 1, 1},
                      YCase{4, 11, 9, 2, 3, 2, 1},
                      YCase{2, 16, 16, 2, 3, 1, 4},
                      YCase{2, 9, 23, 2, 5, 3, 1}));

TEST(DifferentialY, WorkComparableToXOnIsotropicImages)
{
    // Natural-image statistics are roughly isotropic: the X and Y
    // delta directions should save similar work.
    NetworkTrace trace = sceneTrace(makeDnCnn(), 24);
    const auto &lt = trace.layers[2];
    auto x = countDifferentialWork(lt.imap, lt.weights, 1, 1);
    auto y = countDifferentialWorkY(lt.imap, lt.weights, 1, 1);
    auto direct = countDirectWork(lt.imap, lt.weights, 1, 1);
    EXPECT_LT(x.multiplierTerms, direct.multiplierTerms);
    EXPECT_LT(y.multiplierTerms, direct.multiplierTerms);
    double ratio = static_cast<double>(x.multiplierTerms) /
                   static_cast<double>(y.multiplierTerms);
    EXPECT_GT(ratio, 0.7);
    EXPECT_LT(ratio, 1.4);
}

TEST(DifferentialY, VerticalStripesFavourYDirection)
{
    // An image constant along Y but varying along X: Y-deltas vanish.
    TensorI16 imap(2, 12, 12);
    Rng rng(7);
    for (int c = 0; c < 2; ++c) {
        std::vector<std::int16_t> column(12);
        for (auto &v : column)
            v = static_cast<std::int16_t>(rng.below(3000));
        for (int y = 0; y < 12; ++y) {
            for (int x = 0; x < 12; ++x)
                imap.at(c, y, x) = column[x];
        }
    }
    FilterBankI16 bank = randomBank(9, 2, 2, 3);
    auto x = countDifferentialWork(imap, bank, 1, 1);
    auto y = countDifferentialWorkY(imap, bank, 1, 1);
    EXPECT_LT(y.multiplierTerms, x.multiplierTerms / 2);
}

} // namespace
} // namespace diffy
