/**
 * @file
 * Tests for the resilient runtime (DESIGN.md §12): failure taxonomy
 * classification, keep_going quarantine with bounded deterministic
 * retry, the soft-deadline watchdog, SweepReport structure, and the
 * obs counters every error path must feed.
 *
 * Lives in diffy_runtime_tests so the ThreadSanitizer CI job covers
 * the retry/watchdog concurrency surface.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <vector>

#include "core/experiment.hh"
#include "encode/schemes.hh"
#include "obs/metrics.hh"
#include "runtime/resilience.hh"
#include "runtime/sweep.hh"

namespace diffy
{
namespace
{

// ------------------------------------------------------------ taxonomy

std::exception_ptr
capture(const std::function<void()> &thrower)
{
    try {
        thrower();
    } catch (...) {
        return std::current_exception();
    }
    return nullptr;
}

TEST(FailureTaxonomy, ClassifiesEveryDecodeStatus)
{
    struct Case
    {
        DecodeStatus status;
        FailureKind kind;
    };
    const Case cases[] = {
        {DecodeStatus::BadShape, FailureKind::DecodeBadShape},
        {DecodeStatus::Truncated, FailureKind::DecodeTruncated},
        {DecodeStatus::BadHeader, FailureKind::DecodeBadHeader},
        {DecodeStatus::BadChecksum, FailureKind::DecodeBadChecksum},
    };
    for (const Case &c : cases) {
        std::string msg;
        FailureKind kind = classifyException(
            capture([&] { throw DecodeError(c.status, "boom"); }), &msg);
        EXPECT_EQ(kind, c.kind) << to_string(c.kind);
        EXPECT_EQ(msg, "boom");
    }
}

TEST(FailureTaxonomy, ClassifiesByExceptionType)
{
    EXPECT_EQ(classifyException(capture(
                  [] { throw std::invalid_argument("bad"); })),
              FailureKind::BadConfig);
    EXPECT_EQ(
        classifyException(capture([] { throw std::domain_error("bad"); })),
        FailureKind::BadConfig);
    EXPECT_EQ(classifyException(capture([] {
                  throw std::system_error(
                      std::make_error_code(std::errc::io_error));
              })),
              FailureKind::Io);
    EXPECT_EQ(classifyException(
                  capture([] { throw std::ios_base::failure("eof"); })),
              FailureKind::Io);
    EXPECT_EQ(
        classifyException(capture([] { throw std::runtime_error("?"); })),
        FailureKind::Unknown);
    std::string msg;
    EXPECT_EQ(classifyException(capture([] { throw 42; }), &msg),
              FailureKind::Unknown);
    EXPECT_EQ(msg, "(non-standard exception)");
    EXPECT_EQ(classifyException(nullptr), FailureKind::None);
}

TEST(FailureTaxonomy, TokensAreStableSnakeCase)
{
    EXPECT_EQ(to_string(FailureKind::DecodeBadChecksum),
              "decode_bad_checksum");
    EXPECT_EQ(to_string(FailureKind::Timeout), "timeout");
    EXPECT_EQ(to_string(FailureKind::BadConfig), "bad_config");
}

TEST(SweepPolicy, CheckRejectsNegativeKnobs)
{
    SweepPolicy p;
    EXPECT_NO_THROW(p.check());
    p.maxRetries = -1;
    EXPECT_THROW(p.check(), std::invalid_argument);
    p = SweepPolicy{};
    p.jobTimeoutMs = -5;
    EXPECT_THROW(p.check(), std::invalid_argument);
    p = SweepPolicy{};
    p.backoffBaseMicros = -1;
    EXPECT_THROW(p.check(), std::invalid_argument);
}

// ------------------------------------------------- keep_going sweeps

SweepPolicy
keepGoingPolicy(int retries = 0, std::int64_t timeoutMs = 0)
{
    SweepPolicy p;
    p.mode = FailurePolicy::KeepGoing;
    p.maxRetries = retries;
    p.jobTimeoutMs = timeoutMs;
    p.backoffBaseMicros = 10; // fast tests
    return p;
}

TEST(KeepGoing, QuarantinesFailuresAndFinishesTheSweep)
{
    for (int threads : {1, 4}) {
        SweepScheduler scheduler(threads, /*baseSeed=*/7);
        scheduler.setPolicy(keepGoingPolicy());
        std::vector<std::size_t> results =
            scheduler.map(16, [](SweepJob &job) -> std::size_t {
                if (job.index == 3)
                    throw DecodeError(DecodeStatus::BadHeader,
                                      "poisoned");
                if (job.index == 9)
                    throw std::invalid_argument("bad cell config");
                return job.index * 2;
            });
        const SweepReport &report = scheduler.report();
        EXPECT_EQ(report.jobs, 16u) << threads;
        EXPECT_EQ(report.succeeded, 14u) << threads;
        EXPECT_EQ(report.quarantined, 2u) << threads;
        EXPECT_FALSE(report.clean());
        ASSERT_EQ(report.cells.size(), 2u) << threads;
        EXPECT_EQ(report.cells[0].index, 3u);
        EXPECT_EQ(report.cells[0].kind, FailureKind::DecodeBadHeader);
        EXPECT_TRUE(report.cells[0].quarantined);
        EXPECT_EQ(report.cells[1].index, 9u);
        EXPECT_EQ(report.cells[1].kind, FailureKind::BadConfig);
        EXPECT_TRUE(report.isQuarantined(3));
        EXPECT_TRUE(report.isQuarantined(9));
        EXPECT_FALSE(report.isQuarantined(4));
        // Surviving cells carry their results; quarantined slots hold
        // the default value.
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (i == 3 || i == 9)
                EXPECT_EQ(results[i], 0u);
            else
                EXPECT_EQ(results[i], i * 2);
        }
    }
}

TEST(KeepGoing, RetryHealsTransientFailuresDeterministically)
{
    // A clean reference run: no injection at all.
    SweepScheduler reference(1, /*baseSeed=*/11);
    std::vector<double> expected =
        reference.map(12, [](SweepJob &job) {
            double v = 0.0;
            for (int i = 0; i < 8; ++i)
                v += job.rng.uniform();
            return v;
        });

    for (int threads : {1, 4}) {
        auto &reg = obs::MetricsRegistry::instance();
        const std::uint64_t retries0 =
            reg.counter("sweep.job_retries").value();
        std::vector<std::atomic<int>> attempts(12);
        SweepScheduler scheduler(threads, /*baseSeed=*/11);
        scheduler.setPolicy(keepGoingPolicy(/*retries=*/2));
        std::vector<double> healed =
            scheduler.map(12, [&](SweepJob &job) {
                // Draw from the RNG *before* failing: the retry must
                // restart from a fresh identically-seeded stream for
                // the recovered value to match the clean run.
                double v = 0.0;
                for (int i = 0; i < 8; ++i)
                    v += job.rng.uniform();
                if (job.index == 5 &&
                    attempts[job.index].fetch_add(1) < 2)
                    throw DecodeError(DecodeStatus::Truncated,
                                      "transient");
                return v;
            });
        EXPECT_EQ(healed, expected) << threads << " threads";
        const SweepReport &report = scheduler.report();
        EXPECT_EQ(report.succeeded, 12u);
        EXPECT_EQ(report.quarantined, 0u);
        EXPECT_EQ(report.retriedJobs, 1u);
        EXPECT_EQ(report.totalRetries, 2u);
        EXPECT_TRUE(report.clean());
        ASSERT_EQ(report.cells.size(), 1u);
        EXPECT_EQ(report.cells[0].index, 5u);
        EXPECT_EQ(report.cells[0].attempts, 3);
        EXPECT_TRUE(report.cells[0].succeeded);
        EXPECT_EQ(reg.counter("sweep.job_retries").value() - retries0,
                  2u)
            << threads << " threads";
    }
}

TEST(KeepGoing, ExhaustedRetriesQuarantineWithLastError)
{
    SweepScheduler scheduler(2, 3);
    scheduler.setPolicy(keepGoingPolicy(/*retries=*/1));
    scheduler.forEach(4, [](SweepJob &job) {
        if (job.index == 2)
            throw DecodeError(DecodeStatus::BadShape, "always broken");
    });
    const SweepReport &report = scheduler.report();
    EXPECT_EQ(report.quarantined, 1u);
    EXPECT_EQ(report.totalRetries, 1u);
    ASSERT_EQ(report.cells.size(), 1u);
    EXPECT_EQ(report.cells[0].attempts, 2);
    EXPECT_EQ(report.cells[0].kind, FailureKind::DecodeBadShape);
    EXPECT_FALSE(report.cells[0].succeeded);
}

TEST(KeepGoing, EveryTaxonomyBucketFeedsItsCounter)
{
    struct Case
    {
        std::function<void()> thrower;
        FailureKind kind;
    };
    const std::vector<Case> cases = {
        {[] {
             throw DecodeError(DecodeStatus::BadShape, "shape");
         },
         FailureKind::DecodeBadShape},
        {[] {
             throw DecodeError(DecodeStatus::Truncated, "trunc");
         },
         FailureKind::DecodeTruncated},
        {[] {
             throw DecodeError(DecodeStatus::BadHeader, "header");
         },
         FailureKind::DecodeBadHeader},
        {[] {
             throw DecodeError(DecodeStatus::BadChecksum, "crc");
         },
         FailureKind::DecodeBadChecksum},
        {[] { throw std::invalid_argument("config"); },
         FailureKind::BadConfig},
        {[] {
             throw std::system_error(
                 std::make_error_code(std::errc::io_error));
         },
         FailureKind::Io},
        {[] { throw std::runtime_error("mystery"); },
         FailureKind::Unknown},
    };
    auto &reg = obs::MetricsRegistry::instance();
    for (const Case &c : cases) {
        const std::string counterName =
            "sweep.errors." + to_string(c.kind);
        const std::uint64_t before = reg.counter(counterName).value();
        SweepScheduler scheduler(1);
        scheduler.setPolicy(keepGoingPolicy());
        scheduler.forEach(3, [&](SweepJob &job) {
            if (job.index == 1)
                c.thrower();
        });
        const SweepReport &report = scheduler.report();
        ASSERT_EQ(report.cells.size(), 1u) << to_string(c.kind);
        EXPECT_EQ(report.cells[0].kind, c.kind);
        EXPECT_EQ(reg.counter(counterName).value() - before, 1u)
            << counterName;
    }
}

// ------------------------------------------------------------ deadline

TEST(Watchdog, OverrunningJobIsQuarantinedAsTimeout)
{
    for (int threads : {1, 4}) {
        auto &reg = obs::MetricsRegistry::instance();
        const std::uint64_t timeouts0 =
            reg.counter("sweep.job_timeouts").value();
        const std::uint64_t errors0 =
            reg.counter("sweep.errors.timeout").value();
        SweepScheduler scheduler(threads, 5);
        scheduler.setPolicy(
            keepGoingPolicy(/*retries=*/2, /*timeoutMs=*/40));
        std::vector<int> results =
            scheduler.map(6, [](SweepJob &job) {
                if (job.index == 4)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(160));
                return static_cast<int>(job.index) + 1;
            });
        const SweepReport &report = scheduler.report();
        EXPECT_EQ(report.timedOut, 1u) << threads;
        EXPECT_EQ(report.quarantined, 1u) << threads;
        ASSERT_EQ(report.cells.size(), 1u) << threads;
        EXPECT_EQ(report.cells[0].index, 4u);
        EXPECT_EQ(report.cells[0].kind, FailureKind::Timeout);
        EXPECT_TRUE(report.cells[0].timedOut);
        // Timeouts are terminal: no retry budget is spent on them.
        EXPECT_EQ(report.cells[0].attempts, 1);
        // The latch guarantees exactly one count no matter whether the
        // watchdog or the retire-time check observed the overrun first.
        EXPECT_EQ(reg.counter("sweep.job_timeouts").value() - timeouts0,
                  1u)
            << threads;
        EXPECT_EQ(reg.counter("sweep.errors.timeout").value() - errors0,
                  1u)
            << threads;
        EXPECT_EQ(results[4], 0) << "quarantined slot must stay default";
        EXPECT_EQ(results[3], 4);
    }
}

TEST(Watchdog, FailFastRethrowsTimeoutAsError)
{
    SweepScheduler scheduler(1);
    SweepPolicy policy;
    policy.jobTimeoutMs = 30;
    scheduler.setPolicy(policy);
    try {
        scheduler.forEach(3, [](SweepJob &job) {
            if (job.index == 1)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(120));
        });
        FAIL() << "expected the deadline overrun to throw";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("overran"),
                  std::string::npos);
    }
    EXPECT_EQ(scheduler.report().timedOut, 1u);
}

// -------------------------------------------------------------- report

TEST(SweepReport, SummaryAndJsonNameEveryNonCleanCell)
{
    SweepScheduler scheduler(2, 1);
    scheduler.setPolicy(keepGoingPolicy(/*retries=*/1));
    std::vector<std::atomic<int>> attempts(8);
    scheduler.forEach(8, [&](SweepJob &job) {
        if (job.index == 2 && attempts[job.index].fetch_add(1) < 1)
            throw DecodeError(DecodeStatus::Truncated, "transient");
        if (job.index == 6)
            throw std::runtime_error("hopeless");
    });
    const SweepReport &report = scheduler.report();
    const std::string summary = report.summary();
    EXPECT_NE(summary.find("7/8 cells ok"), std::string::npos) << summary;
    EXPECT_NE(summary.find("cell 2: recovered"), std::string::npos);
    EXPECT_NE(summary.find("cell 6: quarantined"), std::string::npos);
    EXPECT_NE(summary.find("[unknown]"), std::string::npos);

    std::ostringstream json;
    report.writeJson(json);
    const std::string j = json.str();
    EXPECT_NE(j.find("\"mode\": \"keep_going\""), std::string::npos);
    EXPECT_NE(j.find("\"succeeded\": 7"), std::string::npos);
    EXPECT_NE(j.find("\"state\": \"recovered\""), std::string::npos);
    EXPECT_NE(j.find("\"state\": \"quarantined\""), std::string::npos);
    EXPECT_NE(j.find("\"kind\": \"unknown\""), std::string::npos);
}

TEST(SweepReport, FailFastStillRecordsBeforeRethrow)
{
    SweepScheduler scheduler(4, 1);
    EXPECT_THROW(scheduler.forEach(8,
                                   [](SweepJob &job) {
                                       if (job.index == 5)
                                           throw std::runtime_error(
                                               "boom");
                                   }),
                 std::runtime_error);
    const SweepReport &report = scheduler.report();
    EXPECT_EQ(report.mode, FailurePolicy::FailFast);
    // Under fail_fast nothing is quarantined; the failure is thrown.
    EXPECT_EQ(report.quarantined, 0u);
    ASSERT_GE(report.cells.size(), 1u);
    EXPECT_EQ(report.cells[0].kind, FailureKind::Unknown);
}

// -------------------------------------------- experiment plumbing

TEST(ExperimentPolicy, SweepPolicyMirrorsCliFields)
{
    ExperimentParams params;
    params.keepGoing = true;
    params.maxRetries = 3;
    params.jobTimeoutMs = 750;
    SweepPolicy policy = params.sweepPolicy();
    EXPECT_EQ(policy.mode, FailurePolicy::KeepGoing);
    EXPECT_EQ(policy.maxRetries, 3);
    EXPECT_EQ(policy.jobTimeoutMs, 750);

    SweepScheduler scheduler = makeSweepScheduler(params);
    EXPECT_EQ(scheduler.policy().mode, FailurePolicy::KeepGoing);
    EXPECT_EQ(scheduler.policy().maxRetries, 3);
}

} // namespace
} // namespace diffy
