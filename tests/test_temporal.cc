/**
 * @file
 * Tests for the temporal-delta codec (encode/temporal.hh) and the
 * temporal inference mode (core/temporal.hh).
 *
 * The load-bearing claims pinned here:
 *  - the codec round-trips any int16 frame pair losslessly and fails
 *    *cleanly* on hostile streams (shape mismatch, over-wide headers,
 *    truncation);
 *  - o_{t-1} + conv(Δa_t) is bit-identical to conv(a_t) for every
 *    stride/dilation studied — the algebraic foundation of the
 *    serving path;
 *  - a 16-frame sequence served through temporalStep() reconstructs
 *    every layer's omap byte-identically to the per-frame reference
 *    oracle, including across dropped frames and re-anchor points.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/bitops.hh"
#include "common/rng.hh"
#include "core/differential_conv.hh"
#include "core/temporal.hh"
#include "encode/bitstream.hh"
#include "encode/temporal.hh"
#include "image/sequence.hh"
#include "nn/executor.hh"
#include "nn/models.hh"

namespace diffy
{
namespace
{

TensorI16
randomTensor(Rng &rng, int c, int h, int w, int range)
{
    TensorI16 t(c, h, w);
    for (std::size_t i = 0; i < t.size(); ++i)
        t.data()[i] = static_cast<std::int16_t>(
            static_cast<std::int64_t>(
                rng.below(2 * static_cast<std::uint64_t>(range) + 1)) -
            range);
    return t;
}

FilterBankI16
randomBank(Rng &rng, int k, int c, int kernel, int range)
{
    FilterBankI16 bank(k, c, kernel, kernel);
    for (std::size_t i = 0; i < bank.size(); ++i)
        bank.data()[i] = static_cast<std::int16_t>(
            static_cast<std::int64_t>(
                rng.below(2 * static_cast<std::uint64_t>(range) + 1)) -
            range);
    return bank;
}

TEST(TemporalCodec, RoundTripsArbitraryFramePairs)
{
    Rng rng(0xC0DEC);
    TemporalCodec codec(16);
    for (int trial = 0; trial < 5; ++trial) {
        TensorI16 prev = randomTensor(rng, 3, 9, 13, 30000);
        TensorI16 cur = randomTensor(rng, 3, 9, 13, 30000);
        EncodedTensor enc = codec.encode(prev, cur);
        EXPECT_EQ(codec.decode(prev, enc), cur);
    }
}

TEST(TemporalCodec, StreamMatchesScalarOracleAcrossGroupSizes)
{
    // Group sizes 1..33 cross every chunk boundary of the dispatched
    // deltaBits16 kernel (common/simd.hh). The emitted stream must
    // match a parse built purely from the scalar bitsNeeded(): per
    // group a 5-bit header holding max bitsNeeded over cur - prev,
    // then that many bits per delta.
    Rng rng(0x0AC1E);
    TensorI16 prev = randomTensor(rng, 2, 7, 11, 32768);
    TensorI16 cur = randomTensor(rng, 2, 7, 11, 32768);
    for (int g = 1; g <= 33; ++g) {
        TemporalCodec codec(g);
        EncodedTensor enc = codec.encode(prev, cur);
        ASSERT_EQ(codec.decode(prev, enc), cur) << codec.name();
        BitReader br(enc.bytes);
        const std::size_t n = cur.size();
        const auto group = static_cast<std::size_t>(g);
        std::size_t hidx = 0;
        for (std::size_t start = 0; start < n; start += group) {
            const std::size_t len = std::min(group, n - start);
            int want_bits = 1;
            for (std::size_t i = 0; i < len; ++i) {
                const std::int32_t d =
                    static_cast<std::int32_t>(cur.data()[start + i]) -
                    prev.data()[start + i];
                want_bits = std::max(want_bits, bitsNeeded(d));
            }
            ASSERT_LT(hidx, enc.headerBits.size()) << codec.name();
            ASSERT_EQ(enc.headerBits[hidx].first, br.bitPosition())
                << codec.name();
            // diffy-lint: allow(R4): scalar format oracle parses raw bits
            const int bits = static_cast<int>(br.read(5)) + 1;
            ASSERT_EQ(bits, want_bits)
                << codec.name() << " group at " << start;
            for (std::size_t i = 0; i < len; ++i) {
                const std::int32_t d =
                    static_cast<std::int32_t>(cur.data()[start + i]) -
                    prev.data()[start + i];
                // diffy-lint: allow(R4): scalar format oracle parses raw bits
                ASSERT_EQ(br.readSigned(bits), d)
                    << codec.name() << " field " << start + i;
            }
            ++hidx;
        }
        EXPECT_EQ(hidx, enc.headerBits.size()) << codec.name();
        EXPECT_EQ(br.bitPosition(), enc.bits) << codec.name();
    }
}

TEST(TemporalCodec, SimilarFramesCompressBelowRaw)
{
    Rng rng(0x51);
    TensorI16 prev = randomTensor(rng, 2, 16, 16, 2000);
    TensorI16 cur = prev;
    // Nudge a tenth of the values by small steps — a typical
    // inter-frame innovation.
    for (std::size_t i = 0; i < cur.size(); i += 10)
        cur.data()[i] = static_cast<std::int16_t>(cur.data()[i] + 3);
    TemporalCodec codec(16);
    EXPECT_LT(codec.bitsPerValue(prev, cur), 6.0);
    EXPECT_EQ(codec.decode(prev, codec.encode(prev, cur)), cur);
}

TEST(TemporalCodec, EncodeRejectsShapeMismatch)
{
    TemporalCodec codec(16);
    TensorI16 a(2, 4, 4), b(2, 4, 5);
    EXPECT_THROW(codec.encode(a, b), std::invalid_argument);
}

TEST(TemporalCodec, DecodeRejectsForeignShape)
{
    Rng rng(0x7);
    TemporalCodec codec(16);
    TensorI16 prev = randomTensor(rng, 2, 6, 6, 100);
    TensorI16 cur = randomTensor(rng, 2, 6, 6, 100);
    EncodedTensor enc = codec.encode(prev, cur);
    TensorI16 other(2, 6, 7);
    DecodeResult r = codec.tryDecode(other, enc);
    EXPECT_EQ(r.status, DecodeStatus::BadShape);
    EXPECT_THROW(codec.decode(other, enc), DecodeError);
}

TEST(TemporalCodec, DecodeRejectsOverWideHeader)
{
    TemporalCodec codec(16);
    TensorI16 prev(1, 2, 8);
    // A 5-bit header can declare up to 32-bit fields; 17 is the legal
    // max for int16 frame deltas.
    EncodedTensor enc;
    enc.shape = prev.shape();
    enc.bytes = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF};
    enc.bits = 64;
    DecodeResult r = codec.tryDecode(prev, enc);
    EXPECT_EQ(r.status, DecodeStatus::BadHeader);
}

TEST(TemporalCodec, DecodeReportsTruncation)
{
    Rng rng(0x9);
    TemporalCodec codec(16);
    TensorI16 prev = randomTensor(rng, 2, 8, 8, 3000);
    TensorI16 cur = randomTensor(rng, 2, 8, 8, 3000);
    EncodedTensor enc = codec.encode(prev, cur);
    enc.bytes.resize(enc.bytes.size() / 2);
    DecodeResult r = codec.tryDecode(prev, enc);
    EXPECT_EQ(r.status, DecodeStatus::Truncated);
    EXPECT_LT(r.valuesDecoded, cur.size());
}

TEST(TemporalConv, DeltaPathMatchesDirectForAllGeometries)
{
    Rng rng(0xDE17A);
    for (int stride : {1, 2}) {
        for (int dilation : {1, 2}) {
            TensorI16 prev = randomTensor(rng, 3, 11, 13, 400);
            TensorI16 cur = randomTensor(rng, 3, 11, 13, 400);
            FilterBankI16 bank = randomBank(rng, 4, 3, 3, 200);
            TensorI32 oPrev = convolveDirect(prev, bank, stride, dilation);
            TensorI32 oCur = convolveDirect(cur, bank, stride, dilation);
            TensorI32 dOut = convolveTemporalDelta(
                temporalDelta(prev, cur), bank, stride, dilation);
            ASSERT_EQ(dOut.shape(), oCur.shape());
            TensorI32 recon(oCur.shape());
            for (std::size_t i = 0; i < recon.size(); ++i)
                recon.data()[i] = oPrev.data()[i] + dOut.data()[i];
            // Linearity makes the temporal path *algebraically* exact:
            // bit-identity, not approximation.
            EXPECT_EQ(recon, oCur)
                << "stride " << stride << " dilation " << dilation;
        }
    }
}

TEST(TemporalConv, MaximalDeltasStayExact)
{
    // Worst case: prev at -32768, cur at +32767 — 17-bit deltas.
    TensorI16 prev(1, 5, 5, -32768);
    TensorI16 cur(1, 5, 5, 32767);
    FilterBankI16 bank(1, 1, 3, 3, 1);
    TensorI32 oPrev = convolveDirect(prev, bank, 1, 1);
    TensorI32 oCur = convolveDirect(cur, bank, 1, 1);
    TensorI32 dOut =
        convolveTemporalDelta(temporalDelta(prev, cur), bank, 1, 1);
    for (std::size_t i = 0; i < oCur.size(); ++i)
        EXPECT_EQ(oPrev.data()[i] + dOut.data()[i], oCur.data()[i]);
}

/** Serve @p frames of a MicroServe stream through temporalStep and
 *  require byte-identity against the per-frame oracle at every step.
 *  Returns the total anchored-layer count. */
int
runOracleCheckedSequence(const std::vector<int> &frames,
                         int reanchorInterval)
{
    SequenceParams sp;
    sp.scene.kind = SceneKind::Nature;
    sp.scene.width = 24;
    sp.scene.height = 24;
    sp.scene.seed = 77;
    sp.motion = MotionKind::Pan;
    sp.amplitude = 4;
    FrameSequence seq(sp);
    NetworkSpec net = makeNetwork("MicroServe");
    ExecutorOptions exec;

    TemporalNetState state;
    TemporalOptions topts;
    topts.reanchorInterval = reanchorInterval;
    topts.verifyAgainstOracle = true; // throws on any divergence
    int anchored = 0;
    for (int t : frames) {
        NetworkTrace trace = runNetwork(net, seq.frame(t), exec);
        TemporalFrameStats stats = temporalStep(state, trace, t, topts);
        anchored += stats.anchored;
        EXPECT_TRUE(stats.exact);
        // Belt and braces: re-derive the oracle omaps and compare the
        // stored state bit-for-bit (verifyAgainstOracle already did,
        // but this pins the *state*, not just the step).
        for (std::size_t li = 0; li < trace.layers.size(); ++li) {
            const LayerTrace &lt = trace.layers[li];
            TensorI32 oracle = convolveDirect(
                lt.imap, lt.weights, lt.spec.stride, lt.spec.dilation);
            EXPECT_EQ(state.layers[li].prevOmap, oracle)
                << "frame " << t << " layer " << li;
        }
    }
    return anchored;
}

TEST(TemporalStep, SixteenFrameSequenceMatchesOracleByteForByte)
{
    std::vector<int> frames;
    for (int t = 0; t < 16; ++t)
        frames.push_back(t);
    const int layerCount = 3; // MicroServe depth
    // K = 8: anchors at frames 0 and 8 only.
    const int anchored = runOracleCheckedSequence(frames, 8);
    EXPECT_EQ(anchored, 2 * layerCount);
}

TEST(TemporalStep, DroppedFramesWidenDeltaButStayExact)
{
    // A camera under backpressure: frames 3..6 and 11 dropped.
    const std::vector<int> frames = {0, 1, 2, 7, 8, 9, 10, 12, 15};
    runOracleCheckedSequence(frames, 0);
}

TEST(TemporalStep, FormatChangeForcesAnchor)
{
    Rng rng(0xF0);
    NetworkSpec net = makeNetwork("MicroServe");
    const ConvLayerSpec &spec = net.layers[0];
    LayerTrace lt;
    lt.spec = spec;
    lt.imap = randomTensor(rng, spec.inChannels, 12, 12, 400);
    lt.imapFracBits = 8;
    lt.weights = randomBank(rng, spec.outChannels, spec.inChannels,
                            spec.kernel, 200);
    NetworkTrace trace;
    trace.layers.push_back(lt);

    TemporalNetState state;
    TemporalFrameStats s0 = temporalStep(state, trace, 0);
    EXPECT_EQ(s0.anchored, 1); // no reference yet

    trace.layers[0].imap = randomTensor(rng, spec.inChannels, 12, 12, 400);
    TemporalFrameStats s1 = temporalStep(state, trace, 1);
    EXPECT_EQ(s1.anchored, 0); // clean delta step

    // Same shape, different fixed-point format: the reference lives
    // in another quantization grid, so the layer must re-anchor.
    trace.layers[0].imapFracBits = 9;
    TemporalFrameStats s2 = temporalStep(state, trace, 2);
    EXPECT_EQ(s2.anchored, 1);
}

TEST(TemporalStep, TermAccountingFavoursTemporalOnStaticFrames)
{
    // A static stream: after the anchor, temporal deltas are all
    // zero, so the temporal path's terms collapse while raw terms
    // stay put.
    SequenceParams sp;
    sp.scene.kind = SceneKind::Texture;
    sp.scene.width = 24;
    sp.scene.height = 24;
    sp.scene.seed = 5;
    sp.motion = MotionKind::Static;
    sp.amplitude = 2;
    FrameSequence seq(sp);
    NetworkSpec net = makeNetwork("MicroServe");

    TemporalNetState state;
    temporalStep(state, runNetwork(net, seq.frame(0), {}), 0);
    TemporalFrameStats s =
        temporalStep(state, runNetwork(net, seq.frame(1), {}), 1);
    EXPECT_EQ(s.anchored, 0);
    EXPECT_EQ(s.temporalTerms, 0u);
    EXPECT_GT(s.rawTerms, 0u);
    // Codec footprint: a 5-bit header + 1-bit fields per group of 16
    // is just over 1 bit/value — far below the 16-bit raw stream.
    EXPECT_LT(static_cast<double>(s.codecBits) /
                  static_cast<double>(s.values),
              2.0);
}

} // namespace
} // namespace diffy
