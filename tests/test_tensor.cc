/**
 * @file
 * Tests for the CHW tensors and the X-delta transform that underlies
 * Diffy's storage format.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "common/rng.hh"
#include "tensor/tensor.hh"

namespace diffy
{
namespace
{

TEST(Tensor3, ShapeAndIndexing)
{
    TensorI16 t(2, 3, 4);
    EXPECT_EQ(t.channels(), 2);
    EXPECT_EQ(t.height(), 3);
    EXPECT_EQ(t.width(), 4);
    EXPECT_EQ(t.size(), 24u);
    t.at(1, 2, 3) = 42;
    EXPECT_EQ(t.at(1, 2, 3), 42);
    EXPECT_EQ(t.data()[t.index(1, 2, 3)], 42);
}

TEST(Tensor3, RowMajorWithinChannel)
{
    TensorI16 t(1, 2, 3);
    std::int16_t v = 0;
    for (int y = 0; y < 2; ++y) {
        for (int x = 0; x < 3; ++x)
            t.at(0, y, x) = v++;
    }
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t.data()[i], static_cast<std::int16_t>(i));
}

TEST(Tensor3, PaddedAccessReturnsZeroOutside)
{
    TensorI16 t(1, 2, 2, 7);
    EXPECT_EQ(t.atPadded(0, -1, 0), 0);
    EXPECT_EQ(t.atPadded(0, 0, -1), 0);
    EXPECT_EQ(t.atPadded(0, 2, 0), 0);
    EXPECT_EQ(t.atPadded(0, 0, 2), 0);
    EXPECT_EQ(t.atPadded(0, 1, 1), 7);
}

TEST(Tensor3, CropExtractsSubregion)
{
    TensorI16 t(2, 4, 4);
    for (int c = 0; c < 2; ++c) {
        for (int y = 0; y < 4; ++y) {
            for (int x = 0; x < 4; ++x)
                t.at(c, y, x) = static_cast<std::int16_t>(100 * c + 10 * y + x);
        }
    }
    TensorI16 cropped = t.crop(1, 2, 2, 2);
    EXPECT_EQ(cropped.shape(), (Shape3{2, 2, 2}));
    EXPECT_EQ(cropped.at(0, 0, 0), 12);
    EXPECT_EQ(cropped.at(1, 1, 1), 123);
}

TEST(Tensor4, ShapeAndIndexing)
{
    FilterBankI16 w(3, 2, 3, 3);
    EXPECT_EQ(w.filters(), 3);
    EXPECT_EQ(w.channels(), 2);
    EXPECT_EQ(w.size(), 54u);
    w.at(2, 1, 2, 2) = -5;
    EXPECT_EQ(w.at(2, 1, 2, 2), -5);
}

TEST(XDeltas, FirstColumnStaysRaw)
{
    TensorI16 t(1, 2, 4);
    std::int16_t vals[2][4] = {{10, 12, 11, 11}, {-5, -5, 0, 3}};
    for (int y = 0; y < 2; ++y) {
        for (int x = 0; x < 4; ++x)
            t.at(0, y, x) = vals[y][x];
    }
    TensorI16 d = xDeltas(t);
    EXPECT_EQ(d.at(0, 0, 0), 10);
    EXPECT_EQ(d.at(0, 0, 1), 2);
    EXPECT_EQ(d.at(0, 0, 2), -1);
    EXPECT_EQ(d.at(0, 0, 3), 0);
    EXPECT_EQ(d.at(0, 1, 0), -5);
    EXPECT_EQ(d.at(0, 1, 1), 0);
    EXPECT_EQ(d.at(0, 1, 2), 5);
    EXPECT_EQ(d.at(0, 1, 3), 3);
}

/** Round-trip property across tensor shapes. */
class XDeltaRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(XDeltaRoundTrip, InverseRecoversOriginal)
{
    auto [c, h, w] = GetParam();
    Rng rng(static_cast<std::uint64_t>(c * 10000 + h * 100 + w));
    TensorI16 t(c, h, w);
    for (std::size_t i = 0; i < t.size(); ++i) {
        // Keep magnitudes below half range so deltas cannot saturate.
        t.data()[i] =
            static_cast<std::int16_t>(rng.below(32768)) - 16384;
    }
    EXPECT_EQ(xDeltasInverse(xDeltas(t)), t);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, XDeltaRoundTrip,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 1, 17},
                      std::tuple{3, 5, 8}, std::tuple{16, 8, 8},
                      std::tuple{2, 9, 33}, std::tuple{64, 4, 4}));

TEST(AlignedStorage, TensorBuffersStartOn32ByteBoundaries)
{
    // The SIMD kernel tables (common/simd.hh) issue wide loads from
    // tensor plane bases; AlignedVec pins them to kBufferAlign.
    for (std::size_t n : {1u, 7u, 33u, 1000u}) {
        AlignedVec<std::int16_t> v(n);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) %
                      kBufferAlign,
                  0u)
            << n;
    }
    TensorI16 t3(3, 5, 7);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t3.data()) % kBufferAlign,
              0u);
    Tensor3<std::uint8_t> t8(4, 6, 9);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t8.data()) % kBufferAlign,
              0u);
    FilterBankI16 t4(2, 3, 3, 3);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t4.data()) % kBufferAlign,
              0u);
}

TEST(XDeltas, ConstantRowsCollapseToSingleRawValue)
{
    TensorI16 t(2, 3, 10, 321);
    TensorI16 d = xDeltas(t);
    for (int c = 0; c < 2; ++c) {
        for (int y = 0; y < 3; ++y) {
            EXPECT_EQ(d.at(c, y, 0), 321);
            for (int x = 1; x < 10; ++x)
                EXPECT_EQ(d.at(c, y, x), 0);
        }
    }
}

} // namespace
} // namespace diffy
