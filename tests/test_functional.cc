/**
 * @file
 * Tests for the functional Diffy tile: offset generation, bit-exact
 * output against direct convolution, cycle-count agreement with the
 * analytic timing model, and the Delta-out stride encoding.
 */

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "common/rng.hh"
#include "core/differential_conv.hh"
#include "image/synth.hh"
#include "nn/executor.hh"
#include "nn/models.hh"
#include "sim/functional.hh"
#include "sim/pra.hh"

namespace diffy
{
namespace
{

TEST(OffsetGenerator, ZeroProducesNoOffsets)
{
    OffsetGenerator gen;
    gen.load(0);
    EXPECT_TRUE(gen.exhausted());
    EXPECT_EQ(gen.remaining(), 0u);
}

TEST(OffsetGenerator, StreamsNafDigits)
{
    OffsetGenerator gen;
    gen.load(7); // 8 - 1
    ASSERT_EQ(gen.remaining(), 2u);
    Oneffset first = gen.next();
    EXPECT_EQ(first.exponent, 0);
    EXPECT_TRUE(first.negative);
    Oneffset second = gen.next();
    EXPECT_EQ(second.exponent, 3);
    EXPECT_FALSE(second.negative);
    EXPECT_TRUE(gen.exhausted());
}

TEST(OffsetGenerator, StreamReconstructsValueTimesWeight)
{
    Rng rng(19);
    for (int i = 0; i < 2000; ++i) {
        auto value = static_cast<std::int32_t>(rng.below(1 << 17)) -
                     (1 << 16);
        auto weight = static_cast<std::int16_t>(rng.below(65536) - 32768);
        OffsetGenerator gen;
        gen.load(value);
        EXPECT_EQ(gen.remaining(),
                  static_cast<std::size_t>(boothTerms(value)));
        std::int64_t product = 0;
        while (!gen.exhausted())
            product += OffsetGenerator::apply(weight, gen.next());
        EXPECT_EQ(product, static_cast<std::int64_t>(value) * weight)
            << value << " x " << weight;
    }
}

TEST(StrideDeltas, RoundTripsAtEveryStride)
{
    Rng rng(23);
    TensorI32 t(3, 4, 17);
    for (std::size_t i = 0; i < t.size(); ++i)
        t.data()[i] = static_cast<std::int32_t>(rng.below(100000)) - 50000;
    for (int stride : {1, 2, 3, 4}) {
        EXPECT_EQ(strideDeltasInverse(strideDeltas(t, stride), stride), t)
            << "stride " << stride;
    }
}

LayerTrace
tracedLayer(const NetworkSpec &net, int crop, std::size_t index)
{
    SceneParams p;
    p.kind = SceneKind::Texture;
    p.width = crop;
    p.height = crop;
    p.seed = 91;
    NetworkTrace trace = runNetwork(net, renderScene(p));
    return trace.layers.at(index);
}

class FunctionalTileExactness
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{};

TEST_P(FunctionalTileExactness, OmapMatchesDirectConvolution)
{
    auto [net_name, layer_index] = GetParam();
    LayerTrace layer = tracedLayer(makeNetwork(net_name), 16,
                                   static_cast<std::size_t>(layer_index));
    AcceleratorConfig cfg = defaultDiffyConfig();
    FunctionalResult fr = runFunctionalTile(layer, cfg, true);
    TensorI32 golden = convolveDirect(layer.imap, layer.weights,
                                      layer.spec.stride,
                                      layer.spec.dilation);
    EXPECT_EQ(fr.omap, golden);
}

TEST_P(FunctionalTileExactness, CyclesMatchAnalyticModel)
{
    auto [net_name, layer_index] = GetParam();
    LayerTrace layer = tracedLayer(makeNetwork(net_name), 16,
                                   static_cast<std::size_t>(layer_index));
    AcceleratorConfig cfg = defaultDiffyConfig();
    for (bool differential : {false, true}) {
        FunctionalResult fr =
            runFunctionalTile(layer, cfg, differential);
        LayerComputeStats analytic =
            simulateTermSerialLayer(layer, cfg, differential);
        double filter_groups = cfg.filterGroups(layer.spec.outChannels);
        EXPECT_DOUBLE_EQ(fr.computeCycles * filter_groups,
                         analytic.computeCycles)
            << net_name << " layer " << layer_index << " diff="
            << differential;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Layers, FunctionalTileExactness,
    ::testing::Values(std::tuple{"DnCNN", 1}, std::tuple{"DnCNN", 19},
                      std::tuple{"IRCNN", 3},  // dilation 4
                      std::tuple{"VDSR", 0},   // single channel
                      std::tuple{"FFDNet", 0}),
    [](const auto &name_info) {
        return std::string(std::get<0>(name_info.param)) + "_L" +
               std::to_string(std::get<1>(name_info.param));
    });

TEST(FunctionalTile, RawModeAlsoExact)
{
    LayerTrace layer = tracedLayer(makeIrCnn(), 12, 2);
    AcceleratorConfig cfg = defaultDiffyConfig();
    FunctionalResult fr = runFunctionalTile(layer, cfg, false);
    EXPECT_EQ(fr.omap, convolveDirect(layer.imap, layer.weights,
                                      layer.spec.stride,
                                      layer.spec.dilation));
}

TEST(FunctionalTile, StridedLayersExact)
{
    // AlexNet-style strided first layer.
    SceneParams p;
    p.kind = SceneKind::City;
    p.width = 32;
    p.height = 32;
    p.seed = 47;
    NetworkSpec alex = makeAlexNetConv();
    NetworkTrace trace = runNetwork(alex, renderScene(p));
    const LayerTrace &layer = trace.layers.front();
    AcceleratorConfig cfg = defaultDiffyConfig();
    FunctionalResult fr = runFunctionalTile(layer, cfg, true);
    EXPECT_EQ(fr.omap, convolveDirect(layer.imap, layer.weights,
                                      layer.spec.stride,
                                      layer.spec.dilation));
}

TEST(FunctionalTile, DeltaOutReconstructs)
{
    LayerTrace layer = tracedLayer(makeIrCnn(), 12, 1);
    AcceleratorConfig cfg = defaultDiffyConfig();
    for (int stride_next : {1, 2}) {
        FunctionalResult fr =
            runFunctionalTile(layer, cfg, true, stride_next);
        EXPECT_EQ(strideDeltasInverse(fr.deltaOmap, stride_next),
                  fr.omap)
            << "stride_next " << stride_next;
    }
}

TEST(FunctionalTile, DifferentialProcessesFewerTerms)
{
    LayerTrace layer = tracedLayer(makeDnCnn(), 20, 2);
    AcceleratorConfig cfg = defaultDiffyConfig();
    FunctionalResult diff = runFunctionalTile(layer, cfg, true);
    FunctionalResult raw = runFunctionalTile(layer, cfg, false);
    EXPECT_LT(diff.termsProcessed, raw.termsProcessed);
    EXPECT_EQ(diff.omap, raw.omap);
}

} // namespace
} // namespace diffy
