/**
 * @file
 * Tests for the arch module: work-distribution arithmetic of the
 * accelerator configurations and the memory technology ladders.
 */

#include <gtest/gtest.h>

#include "arch/config.hh"
#include "arch/memtech.hh"
#include "sim/runner.hh"

namespace diffy
{
namespace
{

TEST(FilterGroups, CoversAllFilterCounts)
{
    AcceleratorConfig cfg = defaultDiffyConfig(); // 4 tiles x 16 filters
    EXPECT_EQ(cfg.filterGroups(1), 1);
    EXPECT_EQ(cfg.filterGroups(64), 1);
    EXPECT_EQ(cfg.filterGroups(65), 2);
    EXPECT_EQ(cfg.filterGroups(128), 2);
    EXPECT_EQ(cfg.filterGroups(1024), 16);
}

TEST(FilterGroups, ScalesInverselyWithTiles)
{
    AcceleratorConfig cfg = defaultDiffyConfig();
    cfg.tiles = 8;
    EXPECT_EQ(cfg.filterGroups(128), 1);
    cfg.tiles = 2;
    EXPECT_EQ(cfg.filterGroups(128), 4);
}

TEST(SpatialSplit, OffByDefault)
{
    AcceleratorConfig cfg = defaultDiffyConfig();
    EXPECT_EQ(cfg.spatialSplit(3), 1);
    EXPECT_EQ(cfg.spatialSplit(64), 1);
}

TEST(SpatialSplit, SurplusTilesShareRows)
{
    AcceleratorConfig cfg = defaultDiffyConfig();
    cfg.spatialWorkSharing = true;
    // 3 filters need one tile; 4 tiles -> 4-way row split.
    EXPECT_EQ(cfg.spatialSplit(3), 4);
    // 64 filters need all 4 tiles -> no surplus.
    EXPECT_EQ(cfg.spatialSplit(64), 1);
    cfg.tiles = 32;
    EXPECT_EQ(cfg.spatialSplit(64), 8);
    EXPECT_EQ(cfg.spatialSplit(96), 5); // 6 tiles of filters, 32/6
}

TEST(SpatialSplit, NeverBelowOne)
{
    AcceleratorConfig cfg = defaultDiffyConfig();
    cfg.spatialWorkSharing = true;
    cfg.tiles = 1;
    EXPECT_EQ(cfg.spatialSplit(1024), 1);
}

TEST(MemTechLadder, Fig18LadderIsMonotone)
{
    auto ladder = fig18MemoryLadder();
    ASSERT_GE(ladder.size(), 6u);
    for (std::size_t i = 1; i < ladder.size(); ++i) {
        EXPECT_GE(ladder[i].totalGBs(), ladder[i - 1].totalGBs())
            << ladder[i].label();
    }
}

TEST(MemTechLadder, KnownRelativeOrdering)
{
    EXPECT_LT(memTechByName("LPDDR3-1600").totalGBs(),
              memTechByName("LPDDR4-3200").totalGBs());
    EXPECT_LT(memTechByName("LPDDR4X-4267").totalGBs(),
              memTechByName("HBM2").totalGBs());
    EXPECT_LT(memTechByName("HBM2").totalGBs(),
              memTechByName("HBM3").totalGBs());
    EXPECT_DOUBLE_EQ(memTechByName("DDR4-3200").totalGBs(),
                     memTechByName("LPDDR4-3200").totalGBs());
}

TEST(ConfigValidation, DefaultsAreValid)
{
    EXPECT_TRUE(defaultVaaConfig().validate().ok());
    EXPECT_TRUE(defaultPraConfig().validate().ok());
    EXPECT_TRUE(defaultDiffyConfig().validate().ok());
    EXPECT_EQ(defaultDiffyConfig().validate().summary(), "");
    // validated() returns the config itself on success.
    EXPECT_EQ(defaultDiffyConfig().validated().tiles, 4);
}

TEST(ConfigValidation, ReportsEveryIssueWithFieldNames)
{
    AcceleratorConfig cfg = defaultDiffyConfig();
    cfg.tiles = 0;
    cfg.clockHz = -1.0;
    cfg.amBytes = 0;
    ConfigValidation v = cfg.validate();
    ASSERT_EQ(v.issues.size(), 3u); // all problems, not just the first
    EXPECT_EQ(v.issues[0].field, "tiles");
    EXPECT_EQ(v.issues[1].field, "clockHz");
    EXPECT_EQ(v.issues[2].field, "amBytes");
    EXPECT_NE(v.summary().find("tiles: "), std::string::npos);
    EXPECT_NE(v.summary().find("; "), std::string::npos);
}

TEST(ConfigValidation, TermsCannotExceedLanes)
{
    AcceleratorConfig cfg = defaultDiffyConfig();
    cfg.termsPerFilter = cfg.lanesPerFilter + 1;
    ConfigValidation v = cfg.validate();
    ASSERT_FALSE(v.ok());
    EXPECT_EQ(v.issues[0].field, "termsPerFilter");
}

TEST(ConfigValidation, ValidatedThrowsWithSummary)
{
    AcceleratorConfig cfg = defaultDiffyConfig();
    cfg.filtersPerTile = -4;
    try {
        cfg.validated();
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("filtersPerTile"),
                  std::string::npos);
    }
}

TEST(ConfigValidation, SimulatorRejectsBadConfigCleanly)
{
    // The runner entry point validates before any timing model runs,
    // so a zero-lane config fails with a named field instead of a
    // division by zero inside the simulator.
    NetworkTrace trace;
    AcceleratorConfig cfg = defaultDiffyConfig();
    cfg.lanesPerFilter = 0;
    EXPECT_THROW(simulateCompute(trace, cfg), std::invalid_argument);
}

TEST(AcceleratorConfig, DesignNamesRoundTrip)
{
    EXPECT_EQ(to_string(Design::Vaa), "VAA");
    EXPECT_EQ(to_string(Design::Pra), "PRA");
    EXPECT_EQ(to_string(Design::Diffy), "Diffy");
}

TEST(AcceleratorConfig, CompressionNamesDistinct)
{
    const Compression all[] = {
        Compression::None,    Compression::Rlez,    Compression::Rle,
        Compression::Profiled, Compression::RawD8,  Compression::RawD16,
        Compression::RawD256, Compression::DeltaD8, Compression::DeltaD16,
        Compression::DeltaD256, Compression::Ideal,
    };
    for (std::size_t i = 0; i < std::size(all); ++i) {
        for (std::size_t j = i + 1; j < std::size(all); ++j) {
            EXPECT_NE(to_string(all[i]), to_string(all[j]))
                << static_cast<int>(all[i]) << " vs "
                << static_cast<int>(all[j]);
        }
    }
}

} // namespace
} // namespace diffy
