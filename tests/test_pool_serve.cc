/**
 * @file
 * Buffer-pool integration tests for the runtime surface (DESIGN.md
 * §16). Lives in the runtime test binary so the ThreadSanitizer CI
 * job covers the claim that per-stream arenas recycled across serve
 * batches never alias an in-flight frame: each arena is touched by at
 * most one worker per batch, and cross-frame temporal state is
 * copy-assigned onto heap storage before the next rewind.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <vector>

#include "common/pool.hh"
#include "runtime/sweep.hh"
#include "serve/saturation.hh"
#include "serve/stream_server.hh"

namespace diffy
{
namespace
{

ServeOptions
poolServe(int streams, int threads)
{
    ServeOptions o;
    o.streams = streams;
    o.queueCapacity = streams;
    o.batchMax = streams;
    o.threads = threads;
    o.reanchorInterval = 4;
    o.frameHeight = 16;
    o.frameWidth = 16;
    o.seed = 21;
    o.motion = MotionKind::Pan;
    o.amplitude = 2;
    // Every reconstruction is checked against the per-frame oracle:
    // if buffer reuse ever aliased an in-flight frame, the decoded
    // tensors would diverge and this would fail loudly.
    o.verifyOracle = true;
    return o;
}

/** One round-robin inject-then-drain round over every stream. */
void
runRound(StreamServer &server)
{
    for (int k = 0; k < server.options().streams; ++k)
        server.offer(k);
    server.drainAll();
}

TEST(ServePool, BatchesReuseBuffersWithoutAliasingInFlightFrames)
{
    // Multi-threaded on purpose: four workers rewind four distinct
    // arenas concurrently while the pool's mutex arbitrates slab
    // traffic — the exact surface the TSan job must see.
    StreamServer server(poolServe(4, 4));
    runRound(server); // warmup: arenas fetch their slabs
    const std::uint64_t fetchesAfterWarmup =
        server.bufferPool().stats().heapFetches;
    EXPECT_GT(fetchesAfterWarmup, 0u);

    for (int r = 0; r < 6; ++r)
        runRound(server);

    const BufferPool::Stats stats = server.bufferPool().stats();
    // Steady state: later batches ran entirely out of recycled
    // arena slabs — zero new heap fetches across six rounds.
    EXPECT_EQ(stats.heapFetches, fetchesAfterWarmup);
    // And the frames were all served and oracle-verified.
    const ServeTotals totals = server.totals();
    EXPECT_EQ(totals.sum.served, 28u);
    EXPECT_EQ(totals.sum.failed, 0u);
}

TEST(ServePool, SteadyStateGaugeStaysZeroAfterWarmup)
{
    const AllocationGateReport report =
        runAllocationGate(poolServe(3, 2), /*warmupRounds=*/3,
                          /*steadyRounds=*/8);
    EXPECT_TRUE(report.passed());
    EXPECT_EQ(report.steadyPoolFetches, 0u);
    EXPECT_EQ(report.steadyServed, 24u);
    EXPECT_GT(report.poolHeapFetches, 0u);
}

TEST(SweepPool, JobsGetRecycledArenas)
{
    SweepScheduler sched(4, 7);
    // First sweep: every job allocates frame-sized scratch from its
    // leased arena. 16 jobs over at most 4 arenas forces reuse.
    std::vector<std::size_t> slabCounts(16, 0);
    sched.forEach(16, [&](SweepJob &job) {
        ASSERT_NE(job.arena, nullptr);
        ArenaScope scope(*job.arena);
        AlignedVec<std::int32_t> plane(
            4096, static_cast<std::int32_t>(job.index),
            scratchAlloc<std::int32_t>());
        slabCounts[job.index] = job.arena->slabCount();
        EXPECT_EQ(plane[0], static_cast<std::int32_t>(job.index));
    });
    for (std::size_t n : slabCounts)
        EXPECT_GE(n, 1u);

    // Second sweep on the same scheduler: the arenas (and their
    // slabs) come back from the free list instead of the heap.
    sched.forEach(16, [&](SweepJob &job) {
        ASSERT_NE(job.arena, nullptr);
        EXPECT_GE(job.arena->slabCount(), 1u);
        // Rewound before the body ran: the full slab is available.
        void *p = job.arena->allocate(64, 32);
        EXPECT_NE(p, nullptr);
    });
}

} // namespace
} // namespace diffy
