/**
 * @file
 * Tests for the procedural image synthesizer and the Table II dataset
 * catalog substitute. These pin the statistical properties the whole
 * reproduction relies on: determinism, value range, spatial
 * correlation, and its ordering across scene families.
 */

#include <gtest/gtest.h>

#include "image/catalog.hh"
#include "image/synth.hh"

namespace diffy
{
namespace
{

SceneParams
makeParams(SceneKind kind, std::uint64_t seed = 1, int size = 64)
{
    SceneParams p;
    p.kind = kind;
    p.width = size;
    p.height = size;
    p.seed = seed;
    return p;
}

TEST(Synth, DeterministicForSameSeed)
{
    auto a = renderScene(makeParams(SceneKind::Nature, 7));
    auto b = renderScene(makeParams(SceneKind::Nature, 7));
    EXPECT_EQ(a, b);
}

TEST(Synth, DifferentSeedsDiffer)
{
    auto a = renderScene(makeParams(SceneKind::Nature, 7));
    auto b = renderScene(makeParams(SceneKind::Nature, 8));
    EXPECT_NE(a, b);
}

TEST(Synth, ThreeChannelsInUnitRange)
{
    for (auto kind : {SceneKind::Nature, SceneKind::City,
                      SceneKind::Texture, SceneKind::Gradient,
                      SceneKind::Portrait}) {
        auto img = renderScene(makeParams(kind));
        ASSERT_EQ(img.channels(), 3) << to_string(kind);
        for (std::size_t i = 0; i < img.size(); ++i) {
            ASSERT_GE(img.data()[i], 0.0f);
            ASSERT_LE(img.data()[i], 1.0f);
        }
    }
}

TEST(Synth, SpatiallyCorrelated)
{
    // Adjacent-pixel differences must be far below the range of the
    // data — the property the whole paper builds on.
    for (auto kind : {SceneKind::Nature, SceneKind::Gradient,
                      SceneKind::Portrait}) {
        auto img = renderScene(makeParams(kind, 3, 96));
        EXPECT_LT(meanAbsXDelta(img), 0.08) << to_string(kind);
    }
}

TEST(Synth, GradientSmootherThanCity)
{
    auto gradient = renderScene(makeParams(SceneKind::Gradient, 5, 96));
    auto city = renderScene(makeParams(SceneKind::City, 5, 96));
    EXPECT_LT(meanAbsXDelta(gradient), meanAbsXDelta(city));
}

TEST(Synth, RoughnessKnobIncreasesDeltas)
{
    auto smooth = makeParams(SceneKind::Nature, 11, 96);
    smooth.roughness = 0.3;
    auto rough = makeParams(SceneKind::Nature, 11, 96);
    rough.roughness = 0.9;
    EXPECT_LT(meanAbsXDelta(renderScene(smooth)),
              meanAbsXDelta(renderScene(rough)));
}

TEST(Synth, NoiseSigmaAddsHighFrequencyContent)
{
    auto clean = makeParams(SceneKind::Nature, 13, 96);
    auto noisy = clean;
    noisy.noiseSigma = 0.05;
    EXPECT_LT(meanAbsXDelta(renderScene(clean)),
              meanAbsXDelta(renderScene(noisy)));
}

TEST(Synth, KindNamesRoundTrip)
{
    for (auto kind : {SceneKind::Nature, SceneKind::City,
                      SceneKind::Texture, SceneKind::Gradient,
                      SceneKind::Portrait}) {
        EXPECT_EQ(sceneKindFromString(to_string(kind)), kind);
    }
    EXPECT_THROW(sceneKindFromString("bogus"), std::invalid_argument);
}

TEST(Catalog, MirrorsTableTwo)
{
    auto catalog = datasetCatalog(2, 48);
    ASSERT_EQ(catalog.size(), 7u);
    EXPECT_EQ(catalog[0].name, "CBSD68");
    EXPECT_EQ(catalog[0].paperSamples, 68);
    EXPECT_EQ(catalog[6].name, "HD33");
    EXPECT_EQ(catalog[6].paperSamples, 33);
    for (const auto &spec : catalog) {
        EXPECT_EQ(spec.scenes.size(), 2u) << spec.name;
        for (const auto &scene : spec.scenes) {
            EXPECT_EQ(scene.width, 48);
            EXPECT_EQ(scene.height, 48);
        }
    }
}

TEST(Catalog, RealNoiseDatasetCarriesNoise)
{
    auto catalog = datasetCatalog(1, 48);
    const DatasetSpec *rni = nullptr;
    for (const auto &spec : catalog) {
        if (spec.name == "RNI15")
            rni = &spec;
    }
    ASSERT_NE(rni, nullptr);
    EXPECT_GT(rni->scenes.front().noiseSigma, 0.0);
}

TEST(Catalog, DefaultEvalScenesAreDistinct)
{
    auto scenes = defaultEvalScenes(5, 32);
    ASSERT_EQ(scenes.size(), 5u);
    for (std::size_t i = 1; i < scenes.size(); ++i)
        EXPECT_NE(scenes[i].seed, scenes[0].seed);
}

TEST(Catalog, BarbaraSceneIsTextured)
{
    SceneParams barbara = barbaraScene(64);
    EXPECT_EQ(barbara.kind, SceneKind::Texture);
    auto img = renderScene(barbara);
    EXPECT_EQ(img.channels(), 3);
}

} // namespace
} // namespace diffy
