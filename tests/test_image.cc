/**
 * @file
 * Tests for the procedural image synthesizer and the Table II dataset
 * catalog substitute. These pin the statistical properties the whole
 * reproduction relies on: determinism, value range, spatial
 * correlation, and its ordering across scene families.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "image/catalog.hh"
#include "image/sequence.hh"
#include "image/synth.hh"
#include "runtime/sweep.hh"

namespace diffy
{
namespace
{

SceneParams
makeParams(SceneKind kind, std::uint64_t seed = 1, int size = 64)
{
    SceneParams p;
    p.kind = kind;
    p.width = size;
    p.height = size;
    p.seed = seed;
    return p;
}

TEST(Synth, DeterministicForSameSeed)
{
    auto a = renderScene(makeParams(SceneKind::Nature, 7));
    auto b = renderScene(makeParams(SceneKind::Nature, 7));
    EXPECT_EQ(a, b);
}

TEST(Synth, DifferentSeedsDiffer)
{
    auto a = renderScene(makeParams(SceneKind::Nature, 7));
    auto b = renderScene(makeParams(SceneKind::Nature, 8));
    EXPECT_NE(a, b);
}

TEST(Synth, ThreeChannelsInUnitRange)
{
    for (auto kind : {SceneKind::Nature, SceneKind::City,
                      SceneKind::Texture, SceneKind::Gradient,
                      SceneKind::Portrait}) {
        auto img = renderScene(makeParams(kind));
        ASSERT_EQ(img.channels(), 3) << to_string(kind);
        for (std::size_t i = 0; i < img.size(); ++i) {
            ASSERT_GE(img.data()[i], 0.0f);
            ASSERT_LE(img.data()[i], 1.0f);
        }
    }
}

TEST(Synth, SpatiallyCorrelated)
{
    // Adjacent-pixel differences must be far below the range of the
    // data — the property the whole paper builds on.
    for (auto kind : {SceneKind::Nature, SceneKind::Gradient,
                      SceneKind::Portrait}) {
        auto img = renderScene(makeParams(kind, 3, 96));
        EXPECT_LT(meanAbsXDelta(img), 0.08) << to_string(kind);
    }
}

TEST(Synth, GradientSmootherThanCity)
{
    auto gradient = renderScene(makeParams(SceneKind::Gradient, 5, 96));
    auto city = renderScene(makeParams(SceneKind::City, 5, 96));
    EXPECT_LT(meanAbsXDelta(gradient), meanAbsXDelta(city));
}

TEST(Synth, RoughnessKnobIncreasesDeltas)
{
    auto smooth = makeParams(SceneKind::Nature, 11, 96);
    smooth.roughness = 0.3;
    auto rough = makeParams(SceneKind::Nature, 11, 96);
    rough.roughness = 0.9;
    EXPECT_LT(meanAbsXDelta(renderScene(smooth)),
              meanAbsXDelta(renderScene(rough)));
}

TEST(Synth, NoiseSigmaAddsHighFrequencyContent)
{
    auto clean = makeParams(SceneKind::Nature, 13, 96);
    auto noisy = clean;
    noisy.noiseSigma = 0.05;
    EXPECT_LT(meanAbsXDelta(renderScene(clean)),
              meanAbsXDelta(renderScene(noisy)));
}

TEST(Synth, KindNamesRoundTrip)
{
    for (auto kind : {SceneKind::Nature, SceneKind::City,
                      SceneKind::Texture, SceneKind::Gradient,
                      SceneKind::Portrait}) {
        EXPECT_EQ(sceneKindFromString(to_string(kind)), kind);
    }
    EXPECT_THROW(sceneKindFromString("bogus"), std::invalid_argument);
}

TEST(Catalog, MirrorsTableTwo)
{
    auto catalog = datasetCatalog(2, 48);
    ASSERT_EQ(catalog.size(), 7u);
    EXPECT_EQ(catalog[0].name, "CBSD68");
    EXPECT_EQ(catalog[0].paperSamples, 68);
    EXPECT_EQ(catalog[6].name, "HD33");
    EXPECT_EQ(catalog[6].paperSamples, 33);
    for (const auto &spec : catalog) {
        EXPECT_EQ(spec.scenes.size(), 2u) << spec.name;
        for (const auto &scene : spec.scenes) {
            EXPECT_EQ(scene.width, 48);
            EXPECT_EQ(scene.height, 48);
        }
    }
}

TEST(Catalog, RealNoiseDatasetCarriesNoise)
{
    auto catalog = datasetCatalog(1, 48);
    const DatasetSpec *rni = nullptr;
    for (const auto &spec : catalog) {
        if (spec.name == "RNI15")
            rni = &spec;
    }
    ASSERT_NE(rni, nullptr);
    EXPECT_GT(rni->scenes.front().noiseSigma, 0.0);
}

TEST(Catalog, DefaultEvalScenesAreDistinct)
{
    auto scenes = defaultEvalScenes(5, 32);
    ASSERT_EQ(scenes.size(), 5u);
    for (std::size_t i = 1; i < scenes.size(); ++i)
        EXPECT_NE(scenes[i].seed, scenes[0].seed);
}

TEST(Catalog, BarbaraSceneIsTextured)
{
    SceneParams barbara = barbaraScene(64);
    EXPECT_EQ(barbara.kind, SceneKind::Texture);
    auto img = renderScene(barbara);
    EXPECT_EQ(img.channels(), 3);
}

SequenceParams
makeSeqParams(MotionKind motion, std::uint64_t seed = 9, int size = 32,
              int amplitude = 6)
{
    SequenceParams p;
    p.scene = makeParams(SceneKind::Nature, seed, size);
    p.motion = motion;
    p.amplitude = amplitude;
    p.motionSeed = seed ^ 0xABCDULL;
    return p;
}

TEST(FrameSequence, DeterministicAcrossRunsAndAccessOrder)
{
    for (MotionKind kind : {MotionKind::Static, MotionKind::Pan,
                            MotionKind::Jitter, MotionKind::Drift}) {
        FrameSequence a(makeSeqParams(kind));
        FrameSequence b(makeSeqParams(kind));
        // frame(t) is pure in (params, t): forward order on one
        // sequence must match reverse order on the other.
        for (int t = 7; t >= 0; --t)
            EXPECT_EQ(a.frame(t), b.frame(t)) << to_string(kind);
    }
}

TEST(FrameSequence, DeterministicAcrossThreadCounts)
{
    const SequenceParams params = makeSeqParams(MotionKind::Jitter);
    FrameSequence seq(params);
    std::vector<Tensor3<float>> serial;
    for (int t = 0; t < 12; ++t)
        serial.push_back(seq.frame(t));
    for (int threads : {2, 8}) {
        SweepScheduler sched(threads, 0);
        FrameSequence shared(params);
        auto parallel = sched.map(
            serial.size(), [&shared](SweepJob &job) {
                return shared.frame(static_cast<std::int64_t>(job.index));
            });
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t t = 0; t < serial.size(); ++t)
            EXPECT_EQ(parallel[t], serial[t]) << threads << "t @" << t;
    }
}

TEST(FrameSequence, StaticRepeatsExactly)
{
    FrameSequence seq(makeSeqParams(MotionKind::Static));
    EXPECT_EQ(seq.frame(0), seq.frame(17));
}

TEST(FrameSequence, PanStaysInMarginAndMovesSmoothly)
{
    const int amp = 6;
    FrameSequence seq(makeSeqParams(MotionKind::Pan, 9, 32, amp));
    FrameSequence::Offset prev = seq.offsetAt(0);
    bool moved = false;
    for (int t = 1; t < 50; ++t) {
        FrameSequence::Offset off = seq.offsetAt(t);
        EXPECT_GE(off.x, 0);
        EXPECT_LE(off.x, 2 * amp);
        EXPECT_GE(off.y, 0);
        EXPECT_LE(off.y, 2 * amp);
        // Smooth camera: at most one pixel per frame per axis.
        EXPECT_LE(std::abs(off.x - prev.x), 1);
        EXPECT_LE(std::abs(off.y - prev.y), 1);
        moved = moved || off.x != prev.x || off.y != prev.y;
        prev = off;
    }
    EXPECT_TRUE(moved);
}

TEST(FrameSequence, JitterStaysInMargin)
{
    const int amp = 4;
    FrameSequence seq(makeSeqParams(MotionKind::Jitter, 11, 24, amp));
    bool moved = false;
    for (int t = 0; t < 40; ++t) {
        FrameSequence::Offset off = seq.offsetAt(t);
        EXPECT_GE(off.x, 0);
        EXPECT_LE(off.x, 2 * amp);
        EXPECT_GE(off.y, 0);
        EXPECT_LE(off.y, 2 * amp);
        moved = moved || off.x != amp || off.y != amp;
    }
    EXPECT_TRUE(moved);
}

TEST(FrameSequence, DriftPerturbsWithoutMoving)
{
    SequenceParams p = makeSeqParams(MotionKind::Drift);
    p.driftSigma = 0.05;
    FrameSequence seq(p);
    EXPECT_EQ(seq.offsetAt(3).x, seq.offsetAt(4).x);
    auto a = seq.frame(3);
    auto b = seq.frame(4);
    EXPECT_NE(a, b);
    // Same crop underneath: frames stay close in value.
    double meanAbs = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        meanAbs += std::abs(a.data()[i] - b.data()[i]);
    meanAbs /= static_cast<double>(a.size());
    EXPECT_LT(meanAbs, 4 * 0.05);
}

TEST(FrameSequence, MotionKindNamesRoundTrip)
{
    for (MotionKind kind : {MotionKind::Static, MotionKind::Pan,
                            MotionKind::Jitter, MotionKind::Drift})
        EXPECT_EQ(motionKindFromString(to_string(kind)), kind);
    EXPECT_THROW(motionKindFromString("zoom"), std::invalid_argument);
}

TEST(FrameSequence, ValidatesParams)
{
    SequenceParams bad = makeSeqParams(MotionKind::Pan);
    bad.amplitude = -1;
    EXPECT_THROW(FrameSequence{bad}, std::invalid_argument);
    bad = makeSeqParams(MotionKind::Pan);
    bad.scene.width = 0;
    EXPECT_THROW(FrameSequence{bad}, std::invalid_argument);
    bad = makeSeqParams(MotionKind::Drift);
    bad.driftSigma = -0.5;
    EXPECT_THROW(FrameSequence{bad}, std::invalid_argument);
}

} // namespace
} // namespace diffy
