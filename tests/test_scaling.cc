/**
 * @file
 * Tests for the crop-to-frame scaling machinery and additional
 * boundary cases of the codecs and simulators that the sweeps rely
 * on.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "encode/schemes.hh"
#include "image/synth.hh"
#include "nn/executor.hh"
#include "nn/models.hh"
#include "sim/runner.hh"

namespace diffy
{
namespace
{

NetworkTrace
sceneTrace(const NetworkSpec &net, int size, std::uint64_t seed = 81)
{
    SceneParams p;
    p.kind = SceneKind::Nature;
    p.width = size;
    p.height = size;
    p.seed = seed;
    return runNetwork(net, renderScene(p));
}

TEST(FrameScaling, ComputeCyclesScaleWithArea)
{
    NetworkTrace trace = sceneTrace(makeIrCnn(), 24);
    AcceleratorConfig cfg = defaultDiffyConfig();
    cfg.compression = Compression::Ideal;
    MemTech mem = memTechByName("HBM2");
    double hd =
        simulateFrame(trace, cfg, mem, 1080, 1920).totalCycles;
    double half =
        simulateFrame(trace, cfg, mem, 540, 960).totalCycles;
    EXPECT_NEAR(hd / half, 4.0, 0.05);
}

TEST(FrameScaling, TraceResolutionInvariance)
{
    // A sub-crop of one rendered image must yield similar *scaled*
    // frame cycles to the full image — the assumption behind
    // crop-sampled simulation. (Rendering at two sizes would not test
    // this: the synthesizer maps its feature hierarchy to the canvas,
    // so a smaller render is per-pixel rougher, not a crop.)
    NetworkSpec net = makeIrCnn();
    AcceleratorConfig cfg = defaultDiffyConfig();
    cfg.compression = Compression::Ideal;
    MemTech mem = memTechByName("HBM2");

    SceneParams p;
    p.kind = SceneKind::Nature;
    p.width = 96;
    p.height = 96;
    p.seed = 81;
    Tensor3<float> full = renderScene(p);
    Tensor3<float> sub = full.crop(24, 24, 48, 48);

    double from_full =
        simulateFrame(runNetwork(net, full), cfg, mem, 1080, 1920)
            .totalCycles;
    double from_crop =
        simulateFrame(runNetwork(net, sub), cfg, mem, 1080, 1920)
            .totalCycles;
    EXPECT_NEAR(from_crop / from_full, 1.0, 0.15);
}

TEST(FrameScaling, HalfResolutionNetworksScaleCorrectly)
{
    // FFDNet runs at half resolution: its frame cycles must be about
    // a quarter of an equivalently-sized full-resolution network's
    // per-MAC scaling, which macsPerFrame captures.
    NetworkSpec net = makeFfdNet();
    double hd = net.macsPerFrame(1080, 1920);
    double expected =
        20.0 * 9.0; // just sanity: nonzero, scales by area below
    EXPECT_GT(hd, expected);
    EXPECT_NEAR(net.macsPerFrame(540, 960) * 4.0, hd, hd * 0.02);
}

TEST(SimulatorBoundaries, OneByOneImap)
{
    // Degenerate spatial extent exercises every padding path.
    TensorI16 imap(16, 1, 1, 77);
    LayerTrace lt;
    lt.spec.name = "dot";
    lt.spec.inChannels = 16;
    lt.spec.outChannels = 16;
    lt.spec.kernel = 3;
    lt.imap = imap;
    lt.weights = FilterBankI16(16, 16, 3, 3, 1);
    AcceleratorConfig cfg = defaultDiffyConfig();
    NetworkTrace trace;
    trace.network = "degenerate";
    trace.layers.push_back(lt);
    for (Design d : {Design::Vaa, Design::Pra, Design::Diffy}) {
        AcceleratorConfig c = cfg;
        c.design = d;
        auto result = simulateCompute(trace, c);
        EXPECT_GT(result.totalComputeCycles(), 0.0) << to_string(d);
    }
}

TEST(SimulatorBoundaries, WidthNarrowerThanPallet)
{
    // out_w < windowColumns: the pallet logic must not index past the
    // last column.
    TensorI16 imap(16, 8, 5, 300);
    LayerTrace lt;
    lt.spec.name = "narrow";
    lt.spec.inChannels = 16;
    lt.spec.outChannels = 64;
    lt.spec.kernel = 3;
    lt.imap = imap;
    lt.weights = FilterBankI16(64, 16, 3, 3, 1);
    AcceleratorConfig cfg = defaultDiffyConfig();
    auto diff = simulateDiffyLayer(lt, cfg);
    auto raw = simulateDiffyLayer(lt, cfg, DiffyMode::Raw);
    EXPECT_GT(diff.computeCycles, 0.0);
    EXPECT_GT(raw.computeCycles, 0.0);
}

TEST(CodecBoundaries, RleRunOfExactlySixteen)
{
    TensorI16 t(1, 1, 16, 9);
    auto codec = makeRleCodec();
    EncodedTensor enc = codec->encode(t);
    EXPECT_EQ(enc.bits, 20u); // one (4b run, 16b value) entry
    EXPECT_EQ(codec->decode(enc), t);
}

TEST(CodecBoundaries, RleRunOfSeventeenSplits)
{
    TensorI16 t(1, 1, 17, 9);
    auto codec = makeRleCodec();
    EncodedTensor enc = codec->encode(t);
    EXPECT_EQ(enc.bits, 40u); // 16-run + 1-run
    EXPECT_EQ(codec->decode(enc), t);
}

TEST(CodecBoundaries, RlezLongZeroRuns)
{
    TensorI16 t(1, 1, 100, 0);
    t.at(0, 0, 99) = 5;
    auto codec = makeRlezCodec();
    EncodedTensor enc = codec->encode(t);
    EXPECT_EQ(codec->decode(enc), t);
    // 99 zeros need ceil(99/16)=7 carrier entries max; stream stays
    // well under uncompressed size.
    EXPECT_LT(enc.bits, 100u * 16u / 2u);
}

TEST(CodecBoundaries, DeltaDPartialTailGroup)
{
    // Size not divisible by the group: the tail group must encode and
    // decode correctly.
    Rng rng(3);
    TensorI16 t(1, 3, 7);
    for (std::size_t i = 0; i < t.size(); ++i)
        t.data()[i] = static_cast<std::int16_t>(rng.below(5000)) - 2500;
    for (int group : {4, 16, 256}) {
        auto codec = makeDeltaDCodec(group);
        EXPECT_EQ(codec->decode(codec->encode(t)), t) << group;
    }
}

TEST(CodecBoundaries, Profiled16EqualsNoCompressionSize)
{
    TensorI16 t(2, 4, 4);
    Rng rng(5);
    for (std::size_t i = 0; i < t.size(); ++i)
        t.data()[i] = static_cast<std::int16_t>(rng.below(65536) - 32768);
    EXPECT_EQ(makeProfiledCodec(16)->encode(t).bits,
              makeNoCompressionCodec()->encode(t).bits);
    EXPECT_EQ(makeProfiledCodec(16)->decode(
                  makeProfiledCodec(16)->encode(t)),
              t);
}

TEST(ExecutorBoundaries, OddSizedSceneForHalfResNetworks)
{
    // FFDNet/JointNet pack 2x2; even crops are required and the
    // catalog guarantees them, but the input builder must also handle
    // the smallest legal size.
    SceneParams p;
    p.kind = SceneKind::Gradient;
    p.width = 4;
    p.height = 4;
    p.seed = 9;
    auto rgb = renderScene(p);
    auto packed = buildNetworkInput(makeFfdNet(), rgb);
    EXPECT_EQ(packed.channels(), 15);
    EXPECT_EQ(packed.height(), 2);
}

} // namespace
} // namespace diffy
