/**
 * @file
 * Tests for the cycle-level timing models: closed-form checks on
 * constructed inputs and the cross-model invariants the paper's
 * evaluation relies on (PRA <= VAA, Diffy <= PRA on correlated data,
 * T1 efficiency, Delta-out floor, SCNN sparsity behaviour).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "image/synth.hh"
#include "nn/executor.hh"
#include "nn/models.hh"
#include "sim/diffy_sim.hh"
#include "sim/pra.hh"
#include "sim/runner.hh"
#include "sim/scnn.hh"
#include "sim/vaa.hh"

namespace diffy
{
namespace
{

/** Build a synthetic LayerTrace with the given imap and shape. */
LayerTrace
makeLayer(TensorI16 imap, int out_channels, int kernel = 3, int stride = 1,
          int dilation = 1)
{
    LayerTrace lt;
    lt.spec.name = "test";
    lt.spec.inChannels = imap.channels();
    lt.spec.outChannels = out_channels;
    lt.spec.kernel = kernel;
    lt.spec.stride = stride;
    lt.spec.dilation = dilation;
    lt.imap = std::move(imap);
    lt.weights = FilterBankI16(out_channels, lt.spec.inChannels, kernel,
                               kernel, 1);
    return lt;
}

NetworkTrace
sceneTrace(const NetworkSpec &net, int size = 24, std::uint64_t seed = 51)
{
    SceneParams p;
    p.kind = SceneKind::Nature;
    p.width = size;
    p.height = size;
    p.seed = seed;
    return runNetwork(net, renderScene(p));
}

TEST(TermTensors, RawAndDeltaMatchDefinition)
{
    TensorI16 imap(1, 1, 4);
    imap.at(0, 0, 0) = 5; // 2 terms
    imap.at(0, 0, 1) = 5; // delta 0
    imap.at(0, 0, 2) = 7; // delta 2 -> 1 term
    imap.at(0, 0, 3) = 0; // delta -7 -> 2 terms
    LayerTrace lt = makeLayer(imap, 1);
    TermTensors tt = computeTermTensors(lt);
    EXPECT_EQ(tt.raw.at(0, 0, 0), 2);
    EXPECT_EQ(tt.raw.at(0, 0, 2), 2);
    EXPECT_EQ(tt.delta.at(0, 0, 0), 2); // x < stride: raw
    EXPECT_EQ(tt.delta.at(0, 0, 1), 0);
    EXPECT_EQ(tt.delta.at(0, 0, 2), 1);
    EXPECT_EQ(tt.delta.at(0, 0, 3), 2);
}

TEST(TermTensors, StrideDistanceDeltas)
{
    TensorI16 imap(1, 1, 6);
    for (int x = 0; x < 6; ++x)
        imap.at(0, 0, x) = static_cast<std::int16_t>(x * 4);
    LayerTrace lt = makeLayer(imap, 1, 3, 2);
    TermTensors tt = computeTermTensors(lt);
    // Stride 2: delta = a[x] - a[x-2] = 8 -> 1 term for x >= 2.
    EXPECT_EQ(tt.delta.at(0, 0, 2), 1);
    EXPECT_EQ(tt.delta.at(0, 0, 5), 1);
    // x < stride: raw values 0 and 4.
    EXPECT_EQ(tt.delta.at(0, 0, 0), 0);
    EXPECT_EQ(tt.delta.at(0, 0, 1), 1);
}

/**
 * Straightforward per-tap reference of the term-serial pallet walk
 * (the pre-optimization algorithm): no interior/boundary split, no
 * hoisted row pointers, double accumulation. The production walk in
 * sim/pra.cc must reproduce it exactly.
 */
LayerComputeStats
referenceTermSerialLayer(const LayerTrace &layer,
                         const AcceleratorConfig &cfg, bool differential,
                         WalkCost cost)
{
    const auto &spec = layer.spec;
    const int out_h = layer.outHeight();
    const int out_w = layer.outWidth();
    const int cols = cfg.windowColumns;
    const int lanes = cfg.termsPerFilter;

    const TermTensors tt = computeTermTensors(layer, cost);
    const int in_h = layer.imap.height();
    const int in_w = layer.imap.width();
    const int k = spec.kernel;
    const int d = spec.dilation;
    const int s = spec.stride;
    const int pad = spec.samePad();
    const int c_bricks = (spec.inChannels + lanes - 1) / lanes;

    double cycles = 0.0;
    double useful_terms = 0.0;
    std::vector<double> col_cycles(static_cast<std::size_t>(cols));

    for (int oy = 0; oy < out_h; ++oy) {
        for (int px = 0; px < out_w; px += cols) {
            const int cols_here = std::min(cols, out_w - px);
            std::fill(col_cycles.begin(), col_cycles.end(), 0.0);
            for (int cb = 0; cb < c_bricks; ++cb) {
                const int c_lo = cb * lanes;
                const int c_hi = std::min(c_lo + lanes, spec.inChannels);
                for (int ky = 0; ky < k; ++ky) {
                    const int iy = oy * s + ky * d - pad;
                    if (iy < 0 || iy >= in_h) {
                        for (int j = 0; j < cols_here; ++j)
                            col_cycles[j] += static_cast<double>(k);
                        continue;
                    }
                    for (int kx = 0; kx < k; ++kx) {
                        for (int j = 0; j < cols_here; ++j) {
                            const int wx = px + j;
                            const int ix = wx * s + kx * d - pad;
                            const bool raw = !differential || wx == 0;
                            int step_max = 0;
                            if (ix >= 0 && ix < in_w) {
                                const auto &terms =
                                    raw ? tt.raw : tt.delta;
                                for (int c = c_lo; c < c_hi; ++c) {
                                    int t = terms.at(c, iy, ix);
                                    useful_terms += t;
                                    if (t > step_max)
                                        step_max = t;
                                }
                            } else if (!raw && ix - s >= 0 &&
                                       ix - s < in_w) {
                                for (int c = c_lo; c < c_hi; ++c) {
                                    int t = tt.raw.at(c, iy, ix - s);
                                    useful_terms += t;
                                    if (t > step_max)
                                        step_max = t;
                                }
                            }
                            col_cycles[j] += std::max(1, step_max);
                        }
                    }
                }
            }
            double pallet = 0.0;
            for (int j = 0; j < cols_here; ++j)
                pallet = std::max(pallet, col_cycles[j]);
            cycles += pallet;
        }
    }

    LayerComputeStats stats;
    stats.layerName = spec.name;
    stats.computeCycles = cycles *
                          cfg.filterGroups(spec.outChannels) /
                          cfg.spatialSplit(spec.outChannels);
    stats.usefulSlots = useful_terms * spec.outChannels;
    return stats;
}

TEST(TermSerialWalk, MatchesReferenceAcrossGeometries)
{
    Rng rng(77);
    struct Geometry
    {
        int c, h, w, kernel, stride, dilation;
    };
    const Geometry geoms[] = {
        {20, 9, 18, 3, 1, 1}, // channels cross the 16-lane brick
        {4, 7, 7, 5, 1, 1},   // kernel reach exceeds the interior
        {8, 6, 33, 3, 2, 1},  // strided, width not a pallet multiple
        {8, 5, 12, 3, 1, 2},  // dilated taps
        {3, 4, 4, 3, 2, 2},   // tiny imap: mostly boundary columns
        {16, 8, 16, 1, 1, 1}, // pointwise
    };
    for (const auto &g : geoms) {
        TensorI16 imap(g.c, g.h, g.w);
        for (std::size_t i = 0; i < imap.size(); ++i) {
            imap.data()[i] =
                static_cast<std::int16_t>(rng.below(2048) - 512);
        }
        LayerTrace lt =
            makeLayer(imap, 24, g.kernel, g.stride, g.dilation);
        for (AcceleratorConfig cfg :
             {defaultDiffyConfig(), defaultPraConfig()}) {
            cfg.windowColumns = 5; // force ragged pallets too
            for (bool differential : {false, true}) {
                for (WalkCost cost :
                     {WalkCost::BoothTerms, WalkCost::BitSerial}) {
                    clearWalkCache();
                    auto got = simulateTermSerialLayer(lt, cfg,
                                                       differential, cost);
                    auto want = referenceTermSerialLayer(
                        lt, cfg, differential, cost);
                    EXPECT_DOUBLE_EQ(got.computeCycles,
                                     want.computeCycles)
                        << g.c << 'x' << g.h << 'x' << g.w << " k"
                        << g.kernel << " s" << g.stride << " d"
                        << g.dilation << " diff=" << differential;
                    EXPECT_DOUBLE_EQ(got.usefulSlots, want.usefulSlots)
                        << g.c << 'x' << g.h << 'x' << g.w << " k"
                        << g.kernel << " s" << g.stride << " d"
                        << g.dilation << " diff=" << differential;
                }
            }
        }
    }
}

TEST(VaaSim, ClosedFormCycles)
{
    // 32 channels, 16x16 imap, 3x3 kernel, 64 filters, default config
    // (4 tiles x 16 filters x 16 lanes): windows=256, brick steps =
    // ceil(32/16)*9 = 18, filter groups = 1 -> 4608 cycles.
    TensorI16 imap(32, 16, 16, 100);
    LayerTrace lt = makeLayer(imap, 64);
    LayerComputeStats stats = simulateVaaLayer(lt, defaultVaaConfig());
    EXPECT_DOUBLE_EQ(stats.computeCycles, 256.0 * 18.0);
}

TEST(VaaSim, ValueAgnostic)
{
    TensorI16 zeros(16, 8, 8, 0);
    TensorI16 wide(16, 8, 8, 32767);
    AcceleratorConfig cfg = defaultVaaConfig();
    EXPECT_DOUBLE_EQ(
        simulateVaaLayer(makeLayer(zeros, 16), cfg).computeCycles,
        simulateVaaLayer(makeLayer(wide, 16), cfg).computeCycles);
}

TEST(VaaSim, FilterUnderutilizationCostsFullGroup)
{
    TensorI16 imap(16, 8, 8, 1);
    AcceleratorConfig cfg = defaultVaaConfig();
    // Default dataflow partitions only across filters: 3 filters take
    // as long as 64, with the useful fraction collapsing (the paper's
    // last-layer utilization story).
    LayerComputeStats few = simulateVaaLayer(makeLayer(imap, 3), cfg);
    LayerComputeStats full = simulateVaaLayer(makeLayer(imap, 64), cfg);
    EXPECT_DOUBLE_EQ(few.computeCycles, full.computeCycles);
    EXPECT_LT(few.usefulFraction(), full.usefulFraction());
}

TEST(VaaSim, SpatialWorkSharingSplitsRows)
{
    TensorI16 imap(16, 8, 8, 1);
    AcceleratorConfig cfg = defaultVaaConfig();
    cfg.spatialWorkSharing = true;
    // 3 filters occupy one tile; the other three work-share the rows.
    LayerComputeStats few = simulateVaaLayer(makeLayer(imap, 3), cfg);
    LayerComputeStats full = simulateVaaLayer(makeLayer(imap, 64), cfg);
    EXPECT_DOUBLE_EQ(few.computeCycles, full.computeCycles / 4.0);
}

TEST(PraSim, SpatialWorkSharingScalesWithTiles)
{
    // With work-sharing on, doubling tiles beyond the filter demand
    // halves the cycles; with it off, extra tiles change nothing.
    NetworkTrace trace = sceneTrace(makeIrCnn(), 16);
    AcceleratorConfig base = defaultDiffyConfig();
    AcceleratorConfig wide = base;
    wide.tiles = 8;
    EXPECT_DOUBLE_EQ(simulateDiffy(trace, wide).totalComputeCycles(),
                     simulateDiffy(trace, base).totalComputeCycles());
    base.spatialWorkSharing = true;
    wide.spatialWorkSharing = true;
    EXPECT_NEAR(simulateDiffy(trace, wide).totalComputeCycles(),
                simulateDiffy(trace, base).totalComputeCycles() / 2.0,
                simulateDiffy(trace, base).totalComputeCycles() * 0.02);
}

TEST(PraSim, AllZeroImapCostsOneCyclePerStep)
{
    TensorI16 imap(16, 8, 8, 0);
    LayerTrace lt = makeLayer(imap, 64); // fills the 4x16 filter grid
    AcceleratorConfig cfg = defaultPraConfig();
    LayerComputeStats stats = simulatePraLayer(lt, cfg);
    // 8 rows x ceil(8/16)=1 pallet x 1 brick x 9 taps = 72 steps.
    EXPECT_DOUBLE_EQ(stats.computeCycles, 72.0);
    EXPECT_DOUBLE_EQ(stats.usefulSlots, 0.0);
}

TEST(PraSim, UniformPowerOfTwoImapTakesOneCyclePerStep)
{
    TensorI16 imap(16, 8, 8, 256); // 1 term everywhere
    LayerTrace lt = makeLayer(imap, 64);
    LayerComputeStats stats = simulatePraLayer(lt, defaultPraConfig());
    EXPECT_DOUBLE_EQ(stats.computeCycles, 72.0);
}

TEST(PraSim, SyncCostIsGroupMaximum)
{
    // One 4-term value per brick forces every step to 4 cycles.
    TensorI16 imap(16, 8, 8, 256);      // 1 term
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x)
            imap.at(0, y, x) = 0b101010101; // 341: alternating bits
    }
    int group_terms = 5; // NAF of 341 has 5 digits
    LayerTrace lt = makeLayer(imap, 64);
    LayerComputeStats stats = simulatePraLayer(lt, defaultPraConfig());
    // 72 steps total; the 6 padding-row steps (ky=0 of the top output
    // row and ky=2 of the bottom one, 3 kx steps each) cost 1 cycle,
    // the remaining 66 cost the 5-term group maximum.
    EXPECT_DOUBLE_EQ(stats.computeCycles, 6.0 + 66.0 * group_terms);
}

TEST(PraSim, NeverSlowerThanVaaOnRealTraces)
{
    NetworkTrace trace = sceneTrace(makeIrCnn());
    AcceleratorConfig vaa = defaultVaaConfig();
    AcceleratorConfig pra = defaultPraConfig();
    auto rv = simulateVaa(trace, vaa);
    auto rp = simulatePra(trace, pra);
    for (std::size_t i = 0; i < rv.layers.size(); ++i) {
        EXPECT_LE(rp.layers[i].computeCycles,
                  rv.layers[i].computeCycles * 1.001)
            << trace.layers[i].spec.name;
    }
}

TEST(DiffySim, FasterThanPraOnCorrelatedTraces)
{
    NetworkTrace trace = sceneTrace(makeDnCnn());
    AcceleratorConfig cfg = defaultDiffyConfig();
    double pra = simulatePra(trace, cfg).totalComputeCycles();
    double dfy = simulateDiffy(trace, cfg).totalComputeCycles();
    EXPECT_LT(dfy, pra);
}

TEST(DiffySim, RawModeEqualsPra)
{
    NetworkTrace trace = sceneTrace(makeIrCnn());
    AcceleratorConfig cfg = defaultDiffyConfig();
    auto raw = simulateDiffy(trace, cfg, DiffyMode::Raw);
    auto pra = simulatePra(trace, cfg);
    for (std::size_t i = 0; i < raw.layers.size(); ++i) {
        EXPECT_DOUBLE_EQ(raw.layers[i].computeCycles,
                         pra.layers[i].computeCycles);
    }
}

TEST(DiffySim, AutoModeNeverWorseThanEitherFixedMode)
{
    NetworkTrace trace = sceneTrace(makeVdsr());
    AcceleratorConfig cfg = defaultDiffyConfig();
    for (const auto &layer : trace.layers) {
        double diff =
            simulateDiffyLayer(layer, cfg, DiffyMode::Differential)
                .computeCycles;
        double raw =
            simulateDiffyLayer(layer, cfg, DiffyMode::Raw).computeCycles;
        double aut =
            simulateDiffyLayer(layer, cfg, DiffyMode::Auto).computeCycles;
        EXPECT_LE(aut, std::min(diff, raw) + 1e-9);
    }
}

TEST(DiffySim, ConstantRowsApproachDeltaOutFloor)
{
    // A constant imap makes the differential stream all-zero; the
    // pallet cost collapses to the step floor, and the Delta-out
    // engine becomes the pacer.
    TensorI16 imap(16, 16, 64, 1234);
    LayerTrace lt = makeLayer(imap, 64);
    AcceleratorConfig cfg = defaultDiffyConfig();
    LayerComputeStats diff = simulateDiffyLayer(lt, cfg);
    // Floor: pallets = 16 rows x 4 pallets; 32 delta-out cycles each.
    double pallets = 16.0 * 4.0;
    EXPECT_GE(diff.computeCycles, pallets * 32.0 - 1e-9);
}

TEST(TilingSensitivity, T1RaisesRelativeAdvantage)
{
    // The T1 configuration removes cross-lane imbalance: Diffy's
    // speedup over an equally configured VAA must grow (Fig 16).
    NetworkTrace trace = sceneTrace(makeDnCnn(), 20);
    AcceleratorConfig t16_vaa = defaultVaaConfig();
    AcceleratorConfig t16_dfy = defaultDiffyConfig();
    AcceleratorConfig t1_vaa = t16_vaa;
    t1_vaa.termsPerFilter = 1;
    AcceleratorConfig t1_dfy = t16_dfy;
    t1_dfy.termsPerFilter = 1;

    double s16 = simulateVaa(trace, t16_vaa).totalComputeCycles() /
                 simulateDiffy(trace, t16_dfy).totalComputeCycles();
    double s1 = simulateVaa(trace, t1_vaa).totalComputeCycles() /
                simulateDiffy(trace, t1_dfy).totalComputeCycles();
    EXPECT_GT(s1, s16);
}

TEST(ScnnSim, ZeroActivationsCostNothing)
{
    TensorI16 imap(16, 16, 16, 0);
    LayerTrace lt = makeLayer(imap, 16);
    LayerComputeStats stats = simulateScnnLayer(lt, ScnnConfig{});
    EXPECT_DOUBLE_EQ(stats.computeCycles, 0.0);
}

TEST(ScnnSim, WeightSparsityCutsCycles)
{
    NetworkSpec net = makeIrCnn();
    ExecutorOptions dense;
    ExecutorOptions sparse;
    sparse.weightSparsity = 0.75;
    SceneParams p;
    p.width = 24;
    p.height = 24;
    p.seed = 61;
    auto img = renderScene(p);
    double dense_cycles =
        simulateScnn(runNetwork(net, img, dense)).totalComputeCycles();
    double sparse_cycles =
        simulateScnn(runNetwork(net, img, sparse)).totalComputeCycles();
    EXPECT_LT(sparse_cycles, dense_cycles * 0.55);
}

TEST(ScnnSim, FragmentationMakesItSlowerThanPerfectScaling)
{
    // Cycles must be at least total products / 1024 multipliers.
    NetworkTrace trace = sceneTrace(makeIrCnn());
    auto result = simulateScnn(trace);
    for (std::size_t i = 0; i < result.layers.size(); ++i) {
        const auto &ls = result.layers[i];
        EXPECT_GE(ls.computeCycles * 1024.0 + 1e-6, ls.usefulSlots)
            << i;
    }
}

TEST(Runner, DispatchMatchesDesigns)
{
    NetworkTrace trace = sceneTrace(makeIrCnn(), 16);
    AcceleratorConfig vaa = defaultVaaConfig();
    AcceleratorConfig pra = defaultPraConfig();
    AcceleratorConfig dfy = defaultDiffyConfig();
    EXPECT_DOUBLE_EQ(simulateCompute(trace, vaa).totalComputeCycles(),
                     simulateVaa(trace, vaa).totalComputeCycles());
    EXPECT_DOUBLE_EQ(simulateCompute(trace, pra).totalComputeCycles(),
                     simulatePra(trace, pra).totalComputeCycles());
    EXPECT_DOUBLE_EQ(simulateCompute(trace, dfy).totalComputeCycles(),
                     simulateDiffy(trace, dfy).totalComputeCycles());
}

} // namespace
} // namespace diffy
