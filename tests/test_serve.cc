/**
 * @file
 * Tests for the streaming serving subsystem (src/serve).
 *
 * The serving determinism contract is the headline: every counter a
 * StreamServer exposes is a pure function of the offer/admission
 * sequence, so the same schedule must produce bit-identical counters
 * at any thread count — with the temporal-delta reconstruction
 * oracle-checked on every served frame. This file lives in the
 * runtime test binary so TSan covers the batch execution path.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "serve/saturation.hh"
#include "serve/stream_server.hh"

namespace diffy
{
namespace
{

/** Small, fast server config shared by the tests. */
ServeOptions
smallServe(int streams, int queueCapacity, int threads = 1)
{
    ServeOptions o;
    o.streams = streams;
    o.queueCapacity = queueCapacity;
    o.batchMax = 4;
    o.threads = threads;
    o.reanchorInterval = 4;
    o.frameHeight = 16;
    o.frameWidth = 16;
    o.seed = 21;
    o.motion = MotionKind::Pan;
    o.amplitude = 2;
    return o;
}

void
expectCountersEqual(const StreamCounters &a, const StreamCounters &b,
                    const std::string &label)
{
    EXPECT_EQ(a.offered, b.offered) << label;
    EXPECT_EQ(a.admitted, b.admitted) << label;
    EXPECT_EQ(a.rejected, b.rejected) << label;
    EXPECT_EQ(a.served, b.served) << label;
    EXPECT_EQ(a.failed, b.failed) << label;
    EXPECT_EQ(a.anchoredLayers, b.anchoredLayers) << label;
    EXPECT_EQ(a.layers, b.layers) << label;
    EXPECT_EQ(a.values, b.values) << label;
    EXPECT_EQ(a.rawTerms, b.rawTerms) << label;
    EXPECT_EQ(a.spatialTerms, b.spatialTerms) << label;
    EXPECT_EQ(a.temporalTerms, b.temporalTerms) << label;
    EXPECT_EQ(a.temporalSpatialTerms, b.temporalSpatialTerms) << label;
    EXPECT_EQ(a.codecBits, b.codecBits) << label;
}

TEST(StreamServer, AdmissionAndBackpressureAreExact)
{
    StreamServer server(smallServe(3, 2));
    // Five offers against capacity 2: the first two admit, the next
    // three bounce — deterministically, before any work runs.
    EXPECT_TRUE(server.offer(0));
    EXPECT_TRUE(server.offer(1));
    EXPECT_FALSE(server.offer(2));
    EXPECT_FALSE(server.offer(0));
    EXPECT_FALSE(server.offer(1));
    EXPECT_EQ(server.pending(), 2u);

    ServeTotals t = server.totals();
    EXPECT_EQ(t.sum.offered, 5u);
    EXPECT_EQ(t.sum.admitted, 2u);
    EXPECT_EQ(t.sum.rejected, 3u);
    EXPECT_EQ(t.sum.served, 0u);
    // The frame clock advanced on the rejected offers too.
    EXPECT_EQ(server.counters(0).offered, 2u);
    EXPECT_EQ(server.counters(0).rejected, 1u);

    server.drainAll();
    EXPECT_EQ(server.pending(), 0u);
    EXPECT_EQ(server.totals().sum.served, 2u);
    // Queue drained: the same stream admits again.
    EXPECT_TRUE(server.offer(2));
}

TEST(StreamServer, RejectionsFeedObsCounter)
{
    auto &counter =
        obs::MetricsRegistry::instance().counter("serve.rejected");
    const std::uint64_t before = counter.value();
    StreamServer server(smallServe(2, 1));
    EXPECT_TRUE(server.offer(0));
    EXPECT_FALSE(server.offer(1));
    EXPECT_FALSE(server.offer(1));
    EXPECT_EQ(counter.value() - before, server.totals().sum.rejected);
    EXPECT_EQ(counter.value() - before, 2u);
}

TEST(StreamServer, BatchTakesAtMostOneRequestPerStream)
{
    ServeOptions o = smallServe(2, 8);
    o.batchMax = 8;
    StreamServer server(o);
    // Two admitted frames per stream: frame t+1 needs frame t's
    // output, so one batch may carry only one of each.
    EXPECT_TRUE(server.offer(0));
    EXPECT_TRUE(server.offer(0));
    EXPECT_TRUE(server.offer(1));
    EXPECT_TRUE(server.offer(1));
    EXPECT_EQ(server.runBatch(), 2);
    EXPECT_EQ(server.pending(), 2u);
    EXPECT_EQ(server.runBatch(), 2);
    EXPECT_EQ(server.pending(), 0u);
    EXPECT_EQ(server.totals().sum.served, 4u);
}

TEST(StreamServer, CountersAreIdenticalAcrossThreadCounts)
{
    // The any-thread-count byte-identity proof: the same offer
    // schedule, served at 1 and 4 workers with the temporal
    // reconstruction oracle-checked on every frame, must land on
    // bit-identical per-stream counters (including the work tallies,
    // which depend on every reconstructed activation value).
    struct Outcome
    {
        int threads = 0;
        std::vector<StreamCounters> perStream;
        ServeTotals totals;
    };
    auto runSchedule = [](int threads) {
        ServeOptions o = smallServe(3, 4, threads);
        o.verifyOracle = true;
        StreamServer server(o);
        for (int round = 0; round < 6; ++round) {
            for (int s = 0; s < o.streams; ++s) {
                server.offer(s);
                if (round % 2 == 0)
                    server.offer(s); // overdrive every other round
            }
            server.drainAll();
        }
        Outcome out;
        out.threads = server.threads();
        for (int s = 0; s < o.streams; ++s)
            out.perStream.push_back(server.counters(s));
        out.totals = server.totals();
        return out;
    };
    Outcome serial = runSchedule(1);
    Outcome parallel = runSchedule(4);
    EXPECT_EQ(serial.threads, 1);
    EXPECT_EQ(parallel.threads, 4);
    for (int s = 0; s < 3; ++s)
        expectCountersEqual(serial.perStream[s], parallel.perStream[s],
                            "stream " + std::to_string(s));
    EXPECT_EQ(serial.totals.sum.served, parallel.totals.sum.served);
    EXPECT_EQ(serial.totals.sum.failed, 0u);
    // Temporal mode did real delta work: some layers anchored, the
    // rest took the delta path.
    const StreamCounters &sum = serial.totals.sum;
    EXPECT_GT(sum.anchoredLayers, 0u);
    EXPECT_LT(sum.anchoredLayers, sum.layers);
}

TEST(StreamServer, OfferRejectsUnknownStream)
{
    StreamServer server(smallServe(2, 2));
    EXPECT_THROW(server.offer(-1), std::out_of_range);
    EXPECT_THROW(server.offer(2), std::out_of_range);
}

TEST(StreamServer, OptionsValidateNamesTheKnob)
{
    auto expectThrowNaming = [](ServeOptions o, const std::string &knob) {
        try {
            StreamServer server(o);
            FAIL() << "expected std::invalid_argument for " << knob;
        } catch (const std::invalid_argument &e) {
            EXPECT_NE(std::string(e.what()).find(knob),
                      std::string::npos)
                << e.what();
        }
    };
    ServeOptions o = smallServe(2, 2);
    o.streams = 0;
    expectThrowNaming(o, "streams");
    o = smallServe(2, 2);
    o.queueCapacity = 0;
    expectThrowNaming(o, "queueCapacity");
    o = smallServe(2, 2);
    o.batchMax = 0;
    expectThrowNaming(o, "batchMax");
    o = smallServe(2, 2);
    o.frameHeight = 4;
    expectThrowNaming(o, "frame");
}

TEST(Saturation, CurveIsMonotoneInOfferedLoad)
{
    SaturationOptions opts;
    opts.serve = smallServe(2, 3);
    opts.offeredGrid = {1, 2, 4, 8};
    opts.rounds = 2;
    opts.arrivalSeed = 7;
    SaturationCurve curve = runSaturation(opts);
    ASSERT_EQ(curve.points.size(), 4u);
    for (std::size_t i = 0; i < curve.points.size(); ++i) {
        const SaturationPoint &p = curve.points[i];
        EXPECT_EQ(p.offered,
                  static_cast<std::uint64_t>(p.offeredPerRound) *
                      static_cast<std::uint64_t>(opts.rounds));
        // Inject-then-drain: everything admitted is served.
        EXPECT_EQ(p.served, p.admitted);
        EXPECT_EQ(p.offered, p.admitted + p.rejected);
        EXPECT_EQ(p.failed, 0u);
        if (i > 0) {
            // The arrival prefix property makes the curve *exactly*
            // monotone: more offers can only add admissions and
            // rejections, never remove them.
            EXPECT_GE(p.offered, curve.points[i - 1].offered);
            EXPECT_GE(p.served, curve.points[i - 1].served);
            EXPECT_GE(p.rejected, curve.points[i - 1].rejected);
        }
    }
    // Past saturation the queue caps admissions per round.
    const SaturationPoint &last = curve.points.back();
    EXPECT_GT(last.rejected, 0u);
    EXPECT_LE(last.served,
              static_cast<std::uint64_t>(opts.serve.queueCapacity) *
                  static_cast<std::uint64_t>(opts.rounds));
}

TEST(Saturation, JsonArtifactCarriesConfigPointsAndLatency)
{
    SaturationOptions opts;
    opts.serve = smallServe(2, 2);
    opts.offeredGrid = {1, 4};
    opts.rounds = 2;
    SaturationCurve curve = runSaturation(opts);
    std::ostringstream os;
    writeSaturationJson(curve, os);
    const std::string json = os.str();
    for (const char *key :
         {"\"config\"", "\"network\"", "\"streams\"", "\"queueCapacity\"",
          "\"threads\"", "\"motion\"", "\"points\"", "\"offeredPerRound\"",
          "\"served\"", "\"rejected\"", "\"throughputFps\"",
          "\"latency\"", "\"p50Seconds\"", "\"p99Seconds\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
    // One latency record per stream per point.
    for (const SaturationPoint &p : curve.points)
        EXPECT_EQ(p.latency.size(), 2u);
}

TEST(Saturation, ValidatesOptions)
{
    auto base = [] {
        SaturationOptions o;
        o.serve = smallServe(2, 2);
        return o;
    };
    SaturationOptions emptyGrid = base();
    emptyGrid.offeredGrid = {};
    EXPECT_THROW(runSaturation(emptyGrid), std::invalid_argument);
    SaturationOptions zeroRounds = base();
    zeroRounds.rounds = 0;
    EXPECT_THROW(runSaturation(zeroRounds), std::invalid_argument);
    SaturationOptions badEntry = base();
    badEntry.offeredGrid = {1, 0};
    EXPECT_THROW(runSaturation(badEntry), std::invalid_argument);
}

} // namespace
} // namespace diffy
