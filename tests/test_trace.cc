/**
 * @file
 * Tests for trace serialization and the on-disk trace cache.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/trace_cache.hh"
#include "image/synth.hh"
#include "obs/metrics.hh"
#include "nn/executor.hh"
#include "nn/models.hh"
#include "nn/trace.hh"

namespace diffy
{
namespace
{

NetworkTrace
smallTrace()
{
    SceneParams p;
    p.kind = SceneKind::City;
    p.width = 16;
    p.height = 16;
    p.seed = 21;
    return runNetwork(makeIrCnn(), renderScene(p));
}

TEST(TraceSerialization, RoundTripsExactly)
{
    NetworkTrace trace = smallTrace();
    std::stringstream ss;
    saveTrace(trace, ss);
    NetworkTrace back = loadTrace(ss);

    EXPECT_EQ(back.network, trace.network);
    EXPECT_EQ(back.netClass, trace.netClass);
    EXPECT_EQ(back.frameHeight, trace.frameHeight);
    EXPECT_EQ(back.frameWidth, trace.frameWidth);
    ASSERT_EQ(back.layers.size(), trace.layers.size());
    for (std::size_t i = 0; i < trace.layers.size(); ++i) {
        const auto &a = trace.layers[i];
        const auto &b = back.layers[i];
        EXPECT_EQ(a.spec.name, b.spec.name);
        EXPECT_EQ(a.spec.dilation, b.spec.dilation);
        EXPECT_EQ(a.spec.relu, b.spec.relu);
        EXPECT_EQ(a.imapFracBits, b.imapFracBits);
        EXPECT_EQ(a.weightFracBits, b.weightFracBits);
        EXPECT_EQ(a.imap, b.imap);
        EXPECT_EQ(a.weights, b.weights);
    }
}

TEST(TraceSerialization, RejectsBadMagic)
{
    std::stringstream ss;
    ss << "not a trace at all";
    EXPECT_THROW(loadTrace(ss), std::runtime_error);
}

TEST(TraceSerialization, RejectsTruncation)
{
    NetworkTrace trace = smallTrace();
    std::stringstream ss;
    saveTrace(trace, ss);
    std::string full = ss.str();
    std::stringstream truncated(full.substr(0, full.size() / 2));
    EXPECT_THROW(loadTrace(truncated), std::runtime_error);
}

TEST(TraceSerialization, ChecksumCatchesSingleFlippedByte)
{
    // The envelope (magic, body length, trailing CRC-32C) must detect
    // corruption anywhere in the body *before* parsing begins — a
    // flipped byte in a tensor dimension must never surface as a
    // misshapen trace.
    NetworkTrace trace = smallTrace();
    std::stringstream ss;
    saveTrace(trace, ss);
    std::string wire = ss.str();
    wire[wire.size() / 2] ^= 0x01;
    std::stringstream corrupt(wire);
    try {
        loadTrace(corrupt);
        FAIL() << "expected the checksum to catch the flip";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("checksum"),
                  std::string::npos)
            << e.what();
    }
}

class TraceCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               "diffy_trace_cache_test";
        std::filesystem::remove_all(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::filesystem::path dir_;
};

TEST_F(TraceCacheTest, SecondGetHitsDisk)
{
    TraceCache cache(dir_.string());
    SceneParams scene;
    scene.width = 16;
    scene.height = 16;
    scene.seed = 5;
    NetworkSpec net = makeIrCnn();
    NetworkTrace first = cache.get(net, scene);
    ASSERT_TRUE(std::filesystem::exists(dir_));
    auto files = std::distance(std::filesystem::directory_iterator(dir_),
                               std::filesystem::directory_iterator{});
    EXPECT_EQ(files, 1);
    NetworkTrace second = cache.get(net, scene);
    EXPECT_EQ(second.layers.size(), first.layers.size());
    EXPECT_EQ(second.layers[2].imap, first.layers[2].imap);
}

TEST_F(TraceCacheTest, KeyDistinguishesParameters)
{
    SceneParams a;
    a.width = 16;
    a.height = 16;
    SceneParams b = a;
    b.seed = 2;
    NetworkSpec net = makeIrCnn();
    ExecutorOptions opts;
    EXPECT_NE(TraceCache::cacheKey(net, a, opts),
              TraceCache::cacheKey(net, b, opts));
    ExecutorOptions sparse;
    sparse.weightSparsity = 0.5;
    EXPECT_NE(TraceCache::cacheKey(net, a, opts),
              TraceCache::cacheKey(net, a, sparse));
    ExecutorOptions coarse;
    coarse.activationRelError = 0.05;
    EXPECT_NE(TraceCache::cacheKey(net, a, opts),
              TraceCache::cacheKey(net, a, coarse));
}

TEST_F(TraceCacheTest, CorruptEntryIsRecomputed)
{
    TraceCache cache(dir_.string());
    SceneParams scene;
    scene.width = 16;
    scene.height = 16;
    NetworkSpec net = makeIrCnn();
    cache.get(net, scene);
    // Corrupt the single cache file.
    for (const auto &entry : std::filesystem::directory_iterator(dir_)) {
        std::ofstream out(entry.path(), std::ios::binary);
        out << "garbage";
    }
    NetworkTrace trace = cache.get(net, scene);
    EXPECT_EQ(trace.layers.size(), 7u);
}

TEST_F(TraceCacheTest, CorruptEntryIsQuarantinedAndRegenerated)
{
    auto &reg = obs::MetricsRegistry::instance();
    const std::uint64_t evictions0 =
        reg.counter("trace_cache.corrupt_evictions").value();

    SceneParams scene;
    scene.width = 16;
    scene.height = 16;
    NetworkSpec net = makeIrCnn();
    NetworkTrace clean = TraceCache(dir_.string()).get(net, scene);

    // Flip one byte in the middle of the stored file: the magic stays
    // intact, so only the CRC envelope can catch this.
    std::filesystem::path stored;
    for (const auto &entry : std::filesystem::directory_iterator(dir_))
        stored = entry.path();
    {
        std::ifstream in(stored, std::ios::binary);
        std::stringstream buf;
        buf << in.rdbuf();
        std::string bytes = buf.str();
        bytes[bytes.size() / 2] ^= 0x01;
        std::ofstream out(stored, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    // A fresh cache (cold memory layer) must detect the corruption on
    // disk load, quarantine the file, and recompute.
    TraceCache cache(dir_.string());
    NetworkTrace regenerated = cache.get(net, scene);
    EXPECT_EQ(regenerated.layers.size(), clean.layers.size());
    EXPECT_EQ(regenerated.layers[2].imap, clean.layers[2].imap);
    EXPECT_EQ(
        reg.counter("trace_cache.corrupt_evictions").value() - evictions0,
        1u);
    // The bad file was quarantined, not deleted: forensics keep the
    // .corrupt copy while a fresh .trace replaces it.
    EXPECT_TRUE(std::filesystem::exists(stored));
    EXPECT_TRUE(std::filesystem::exists(stored.string() + ".corrupt"));
    // A further get() hits the regenerated entry without re-evicting.
    cache.get(net, scene);
    EXPECT_EQ(
        reg.counter("trace_cache.corrupt_evictions").value() - evictions0,
        1u);
}

TEST(TraceCacheDisabled, EmptyDirectorySkipsDisk)
{
    TraceCache cache("");
    SceneParams scene;
    scene.width = 16;
    scene.height = 16;
    NetworkTrace trace = cache.get(makeIrCnn(), scene);
    EXPECT_EQ(trace.layers.size(), 7u);
}

} // namespace
} // namespace diffy
