/**
 * @file
 * Tests for the quantized forward-pass executor: reference kernels
 * (convolution, pooling, pixel shuffle), input encodings, weight
 * synthesis, and the statistical properties of captured traces.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "image/synth.hh"
#include "nn/executor.hh"
#include "nn/models.hh"

namespace diffy
{
namespace
{

Tensor3<float>
testScene(int size = 32, SceneKind kind = SceneKind::Nature)
{
    SceneParams p;
    p.kind = kind;
    p.width = size;
    p.height = size;
    p.seed = 99;
    return renderScene(p);
}

TEST(Convolve, IdentityKernelPassesThrough)
{
    Tensor3<float> in(2, 5, 5);
    for (std::size_t i = 0; i < in.size(); ++i)
        in.data()[i] = static_cast<float>(i) * 0.01f;
    // 3x3 bank: filter f copies channel f via a center tap.
    Tensor4<float> w(2, 2, 3, 3, 0.0f);
    w.at(0, 0, 1, 1) = 1.0f;
    w.at(1, 1, 1, 1) = 1.0f;
    auto out = convolve(in, w, 1, 1);
    ASSERT_EQ(out.shape(), in.shape());
    for (int c = 0; c < 2; ++c) {
        for (int y = 0; y < 5; ++y) {
            for (int x = 0; x < 5; ++x)
                EXPECT_FLOAT_EQ(out.at(c, y, x), in.at(c, y, x));
        }
    }
}

TEST(Convolve, MatchesHandComputedWindow)
{
    Tensor3<float> in(1, 3, 3);
    float vals[9] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
    for (int i = 0; i < 9; ++i)
        in.data()[i] = vals[i];
    Tensor4<float> w(1, 1, 3, 3, 1.0f); // box filter
    auto out = convolve(in, w, 1, 1);
    // Center output = sum of all inputs; corner (0,0) sums the 2x2
    // in-bounds region.
    EXPECT_FLOAT_EQ(out.at(0, 1, 1), 45.0f);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0), 1 + 2 + 4 + 5);
}

TEST(Convolve, StrideShrinksOutput)
{
    Tensor3<float> in(1, 8, 8, 1.0f);
    Tensor4<float> w(1, 1, 3, 3, 1.0f);
    auto out = convolve(in, w, 2, 1);
    EXPECT_EQ(out.height(), 4);
    EXPECT_EQ(out.width(), 4);
}

TEST(Convolve, DilationUsesSpreadTaps)
{
    Tensor3<float> in(1, 9, 9, 0.0f);
    in.at(0, 4, 4) = 1.0f;
    Tensor4<float> w(1, 1, 3, 3, 0.0f);
    w.at(0, 0, 0, 0) = 1.0f; // top-left tap
    auto out = convolve(in, w, 1, 2);
    // With dilation 2 and pad 2, output (6,6) reads input (4,4).
    EXPECT_FLOAT_EQ(out.at(0, 6, 6), 1.0f);
    EXPECT_FLOAT_EQ(out.at(0, 4, 4), 0.0f);
}

TEST(Convolve, ChannelMismatchThrows)
{
    Tensor3<float> in(2, 4, 4);
    Tensor4<float> w(1, 3, 3, 3);
    EXPECT_THROW(convolve(in, w, 1, 1), std::invalid_argument);
}

TEST(MaxPool, TakesBlockMaxima)
{
    Tensor3<float> in(1, 4, 4);
    for (std::size_t i = 0; i < in.size(); ++i)
        in.data()[i] = static_cast<float>(i);
    auto out = maxPool(in, 2);
    EXPECT_EQ(out.height(), 2);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0), 5.0f);
    EXPECT_FLOAT_EQ(out.at(0, 1, 1), 15.0f);
}

TEST(PixelShuffle, RearrangesChannelsToSpace)
{
    Tensor3<float> in(4, 2, 2);
    for (std::size_t i = 0; i < in.size(); ++i)
        in.data()[i] = static_cast<float>(i);
    auto out = pixelShuffle(in, 2);
    EXPECT_EQ(out.channels(), 1);
    EXPECT_EQ(out.height(), 4);
    EXPECT_EQ(out.width(), 4);
    // Sub-pixel (0,0) comes from channel 0, (0,1) from channel 1, ...
    EXPECT_FLOAT_EQ(out.at(0, 0, 0), in.at(0, 0, 0));
    EXPECT_FLOAT_EQ(out.at(0, 0, 1), in.at(1, 0, 0));
    EXPECT_FLOAT_EQ(out.at(0, 1, 0), in.at(2, 0, 0));
    EXPECT_FLOAT_EQ(out.at(0, 1, 1), in.at(3, 0, 0));
}

TEST(PixelShuffle, RejectsBadChannelCount)
{
    Tensor3<float> in(3, 2, 2);
    EXPECT_THROW(pixelShuffle(in, 2), std::invalid_argument);
}

TEST(NetworkInput, PerNetworkEncodings)
{
    auto rgb = testScene(32);
    EXPECT_EQ(buildNetworkInput(makeDnCnn(), rgb).channels(), 3);
    auto vdsr = buildNetworkInput(makeVdsr(), rgb);
    EXPECT_EQ(vdsr.channels(), 1);
    auto ffdnet = buildNetworkInput(makeFfdNet(), rgb);
    EXPECT_EQ(ffdnet.channels(), 15);
    EXPECT_EQ(ffdnet.height(), 16);
    auto joint = buildNetworkInput(makeJointNet(), rgb);
    EXPECT_EQ(joint.channels(), 4);
    EXPECT_EQ(joint.width(), 16);
}

TEST(NetworkInput, FfdNetNoiseChannelsAreConstant)
{
    auto packed = buildNetworkInput(makeFfdNet(), testScene(32));
    for (int c = 12; c < 15; ++c) {
        float v0 = packed.at(c, 0, 0);
        for (int y = 0; y < packed.height(); ++y) {
            for (int x = 0; x < packed.width(); ++x)
                ASSERT_FLOAT_EQ(packed.at(c, y, x), v0);
        }
    }
}

TEST(SynthesizeWeights, DeterministicPerLayer)
{
    NetworkSpec net = makeDnCnn();
    ExecutorOptions opts;
    int frac_a = 0, frac_b = 0;
    auto a = synthesizeWeights(net, net.layers[1], opts, &frac_a);
    auto b = synthesizeWeights(net, net.layers[1], opts, &frac_b);
    EXPECT_EQ(a, b);
    EXPECT_EQ(frac_a, frac_b);
    auto c = synthesizeWeights(net, net.layers[2], opts, nullptr);
    EXPECT_NE(a, c);
}

TEST(SynthesizeWeights, SparsityKnobPrunes)
{
    NetworkSpec net = makeDnCnn();
    ExecutorOptions opts;
    opts.weightSparsity = 0.75;
    auto w = synthesizeWeights(net, net.layers[1], opts, nullptr);
    std::size_t zeros = 0;
    for (std::size_t i = 0; i < w.size(); ++i)
        zeros += w.data()[i] == 0;
    double frac = static_cast<double>(zeros) /
                  static_cast<double>(w.size());
    EXPECT_NEAR(frac, 0.75, 0.05);
}

TEST(RunNetwork, TraceShapesFollowSpec)
{
    NetworkSpec net = makeIrCnn();
    NetworkTrace trace = runNetwork(net, testScene(24));
    ASSERT_EQ(trace.layers.size(), 7u);
    EXPECT_EQ(trace.network, "IRCNN");
    for (std::size_t i = 0; i < trace.layers.size(); ++i) {
        const auto &lt = trace.layers[i];
        EXPECT_EQ(lt.imap.channels(), lt.spec.inChannels) << i;
        EXPECT_EQ(lt.weights.filters(), lt.spec.outChannels) << i;
        EXPECT_EQ(lt.imap.height(), 24) << i; // same-padding chain
    }
}

TEST(RunNetwork, ReluLayersProduceNonNegativeNextImap)
{
    NetworkSpec net = makeDnCnn();
    NetworkTrace trace = runNetwork(net, testScene(16));
    // Layer i has ReLU => layer i+1's imap is non-negative.
    for (std::size_t i = 0; i + 1 < trace.layers.size(); ++i) {
        if (!trace.layers[i].spec.relu)
            continue;
        const auto &next = trace.layers[i + 1].imap;
        for (std::size_t j = 0; j < next.size(); ++j)
            ASSERT_GE(next.data()[j], 0) << "layer " << i + 1;
    }
}

TEST(RunNetwork, ActivationsShowReluSparsity)
{
    NetworkSpec net = makeDnCnn();
    NetworkTrace trace = runNetwork(net, testScene(24));
    // Intermediate (post-ReLU) imaps should be substantially sparse.
    double zeros = 0.0, total = 0.0;
    for (std::size_t i = 1; i < trace.layers.size(); ++i) {
        const auto &imap = trace.layers[i].imap;
        for (std::size_t j = 0; j < imap.size(); ++j)
            zeros += imap.data()[j] == 0;
        total += static_cast<double>(imap.size());
    }
    double sparsity = zeros / total;
    EXPECT_GT(sparsity, 0.30);
    EXPECT_LT(sparsity, 0.90);
}

TEST(RunNetwork, QuantizationQualityKnobChangesPrecision)
{
    NetworkSpec net = makeIrCnn();
    ExecutorOptions fine;
    fine.activationRelError = 0.0005;
    ExecutorOptions coarse;
    coarse.activationRelError = 0.05;
    auto tf = runNetwork(net, testScene(16), fine);
    auto tc = runNetwork(net, testScene(16), coarse);
    // Finer quality bound -> more fractional bits on some layer.
    bool finer_somewhere = false;
    for (std::size_t i = 0; i < tf.layers.size(); ++i) {
        EXPECT_GE(tf.layers[i].imapFracBits, tc.layers[i].imapFracBits);
        finer_somewhere |=
            tf.layers[i].imapFracBits > tc.layers[i].imapFracBits;
    }
    EXPECT_TRUE(finer_somewhere);
}

TEST(RunNetwork, ClassificationBackboneResolutionLadder)
{
    NetworkSpec net = makeVgg19Conv();
    SceneParams p;
    p.kind = SceneKind::Nature;
    p.width = 64;
    p.height = 64;
    p.seed = 4;
    NetworkTrace trace = runNetwork(net, renderScene(p));
    // The imap resolution must follow each layer's divisor.
    for (const auto &lt : trace.layers) {
        EXPECT_EQ(lt.imap.height(), 64 / lt.spec.resolutionDivisor)
            << lt.spec.name;
    }
}

TEST(RunNetwork, JointNetTwoResolutionPipeline)
{
    NetworkSpec net = makeJointNet();
    NetworkTrace trace = runNetwork(net, testScene(32));
    // Half-resolution body, full-resolution head.
    EXPECT_EQ(trace.layers.front().imap.height(), 16);
    EXPECT_EQ(trace.layers.back().imap.height(), 32);
    EXPECT_EQ(trace.layers[16].imap.channels(), 35); // post-shuffle head
}

TEST(LayerTrace, WeightDensityAccountsZeros)
{
    NetworkSpec net = makeDnCnn();
    ExecutorOptions opts;
    opts.weightSparsity = 0.5;
    NetworkTrace trace = runNetwork(net, testScene(16), opts);
    double density = trace.layers[1].weightDensity();
    EXPECT_NEAR(density, 0.5, 0.06);
}

} // namespace
} // namespace diffy
