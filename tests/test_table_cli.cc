/**
 * @file
 * Tests for the text-table renderer and the CLI flag parser.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/cli.hh"
#include "common/table.hh"

namespace diffy
{
namespace
{

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t("Demo");
    t.setHeader({"Name", "Value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("== Demo =="), std::string::npos);
    EXPECT_NE(out.find("Name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t("T");
    t.setHeader({"A", "B"});
    t.addRow({"longer", "x"});
    std::string out = t.render();
    // Every line containing 'x' must place it at the same column as 'B'.
    auto pos_b = out.find("B");
    auto pos_x = out.find("x");
    ASSERT_NE(pos_b, std::string::npos);
    ASSERT_NE(pos_x, std::string::npos);
    auto col = [&](std::size_t pos) {
        auto nl = out.rfind('\n', pos);
        return nl == std::string::npos ? pos : pos - nl - 1;
    };
    EXPECT_EQ(col(pos_b), col(pos_x));
}

TEST(TextTable, NumberFormatters)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::factor(7.1, 1), "7.1x");
    EXPECT_EQ(TextTable::percent(0.55, 0), "55%");
}

TEST(CliArgs, ParsesSpaceAndEqualsForms)
{
    const char *argv[] = {"prog", "--crop", "64", "--mem=HBM2",
                          "--flag"};
    CliArgs args(5, argv);
    EXPECT_EQ(args.getInt("crop", 0), 64);
    EXPECT_EQ(args.getString("mem", ""), "HBM2");
    EXPECT_TRUE(args.getBool("flag", false));
    EXPECT_TRUE(args.has("crop"));
    EXPECT_FALSE(args.has("missing"));
}

TEST(CliArgs, EqualsFormMatchesSpaceFormEverywhere)
{
    // Serving configs lean on --flag=value; it must behave exactly
    // like --flag value across every accessor.
    const char *eq[] = {"prog", "--streams=8",     "--queue-cap=16",
                        "--motion=jitter", "--rate=2.5", "--offered=1,2,4"};
    const char *sp[] = {"prog",    "--streams", "8",      "--queue-cap",
                        "16",      "--motion",  "jitter", "--rate",
                        "2.5",     "--offered", "1,2,4"};
    CliArgs a(6, eq);
    CliArgs b(11, sp);
    EXPECT_EQ(a.getInt("streams", 0), b.getInt("streams", 0));
    EXPECT_EQ(a.getInt("queue-cap", 0), b.getInt("queue-cap", 0));
    EXPECT_EQ(a.getString("motion", ""), b.getString("motion", ""));
    EXPECT_EQ(a.getDouble("rate", 0.0), b.getDouble("rate", 0.0));
    // A value containing '=' splits only at the first one.
    const char *nested[] = {"prog", "--define=key=value"};
    CliArgs c(2, nested);
    EXPECT_EQ(c.getString("define", ""), "key=value");
}

TEST(CliArgs, EqualsFormOnDeclaredBoolFlag)
{
    // A declared bool flag given as --flag=value binds the value
    // instead of consuming the next token.
    const char *argv[] = {"prog", "--verbose=false", "trace.bin"};
    CliArgs args(3, argv, {"verbose"});
    EXPECT_FALSE(args.getBool("verbose", true));
    ASSERT_EQ(args.positionals().size(), 1u);
    EXPECT_EQ(args.positionals()[0], "trace.bin");
}

TEST(CliArgs, EqualsFormWithEmptyValue)
{
    // "--cache=" explicitly clears a path-valued flag (the benches'
    // idiom for disabling the trace cache).
    const char *argv[] = {"prog", "--cache="};
    CliArgs args(2, argv);
    EXPECT_TRUE(args.has("cache"));
    EXPECT_EQ(args.getString("cache", "default"), "");
}

TEST(CliArgs, EqualsFormRejectsMalformedNumbers)
{
    const char *argv[] = {"prog", "--threads=4x"};
    CliArgs args(2, argv);
    EXPECT_THROW(args.getInt("threads", 1), std::invalid_argument);
}

TEST(CliArgs, FallbacksWhenAbsent)
{
    const char *argv[] = {"prog"};
    CliArgs args(1, argv);
    EXPECT_EQ(args.getInt("crop", 48), 48);
    EXPECT_EQ(args.getString("mem", "DDR4-3200"), "DDR4-3200");
    EXPECT_DOUBLE_EQ(args.getDouble("x", 2.5), 2.5);
    EXPECT_FALSE(args.getBool("flag", false));
}

TEST(CliArgs, DoubleValues)
{
    const char *argv[] = {"prog", "--ratio", "0.75"};
    CliArgs args(3, argv);
    EXPECT_DOUBLE_EQ(args.getDouble("ratio", 0.0), 0.75);
}

TEST(CliArgs, FlagFollowedByFlagIsBoolean)
{
    const char *argv[] = {"prog", "--a", "--b", "7"};
    CliArgs args(4, argv);
    EXPECT_TRUE(args.getBool("a", false));
    EXPECT_EQ(args.getInt("b", 0), 7);
}

TEST(CliArgs, DeclaredBoolFlagDoesNotSwallowPositional)
{
    // The historical bug: "--verbose trace.bin" bound
    // verbose="trace.bin", so getBool returned false and the
    // positional was lost.
    const char *argv[] = {"prog", "--verbose", "trace.bin"};
    CliArgs args(3, argv, {"verbose"});
    EXPECT_TRUE(args.getBool("verbose", false));
    ASSERT_EQ(args.positionals().size(), 1u);
    EXPECT_EQ(args.positionals()[0], "trace.bin");
}

TEST(CliArgs, PositionalsCollectedAroundValueFlags)
{
    const char *argv[] = {"prog", "input.bin", "--crop", "64",
                          "output.bin"};
    CliArgs args(5, argv);
    EXPECT_EQ(args.getInt("crop", 0), 64);
    ASSERT_EQ(args.positionals().size(), 2u);
    EXPECT_EQ(args.positionals()[0], "input.bin");
    EXPECT_EQ(args.positionals()[1], "output.bin");
}

TEST(CliArgs, UndeclaredFlagStillConsumesValueToken)
{
    // Without a declaration the parser keeps the historical greedy
    // binding: the next non-flag token is the value.
    const char *argv[] = {"prog", "--mode", "fast"};
    CliArgs args(3, argv);
    EXPECT_EQ(args.getString("mode", ""), "fast");
    EXPECT_TRUE(args.positionals().empty());
}

TEST(CliArgs, GetIntRejectsMalformedValues)
{
    const char *argv[] = {"prog", "--threads=abc", "--crop", "12x",
                          "--good", "7"};
    CliArgs args(6, argv);
    // atoll would have silently produced 0 / 12 here.
    EXPECT_THROW(args.getInt("threads", 1), std::invalid_argument);
    EXPECT_THROW(args.getInt("crop", 1), std::invalid_argument);
    EXPECT_EQ(args.getInt("good", 0), 7);
    try {
        args.getInt("threads", 1);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("threads"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("abc"), std::string::npos);
    }
}

TEST(CliArgs, GetDoubleRejectsMalformedValues)
{
    const char *argv[] = {"prog", "--ratio=0.5x", "--sigma", "high",
                          "--ok", "2.25"};
    CliArgs args(6, argv);
    EXPECT_THROW(args.getDouble("ratio", 0.0), std::invalid_argument);
    EXPECT_THROW(args.getDouble("sigma", 0.0), std::invalid_argument);
    EXPECT_DOUBLE_EQ(args.getDouble("ok", 0.0), 2.25);
}

TEST(CliArgs, BareNumericFlagReadAsIntThrows)
{
    // A trailing bare flag stores "true"; asking for an integer must
    // fail loudly, not run a 0-thread sweep.
    const char *argv[] = {"prog", "--threads"};
    CliArgs args(2, argv);
    EXPECT_THROW(args.getInt("threads", 1), std::invalid_argument);
}

} // namespace
} // namespace diffy
