/**
 * @file
 * Tests for the 16-bit fixed-point helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/fixed_point.hh"
#include "common/rng.hh"

namespace diffy
{
namespace
{

TEST(Saturate16, ClampsToInt16Range)
{
    EXPECT_EQ(saturate16(0), 0);
    EXPECT_EQ(saturate16(32767), 32767);
    EXPECT_EQ(saturate16(32768), 32767);
    EXPECT_EQ(saturate16(-32768), -32768);
    EXPECT_EQ(saturate16(-32769), -32768);
    EXPECT_EQ(saturate16(1'000'000), 32767);
    EXPECT_EQ(saturate16(-1'000'000), -32768);
}

TEST(Quantize16, RoundTripsWithinStep)
{
    Rng rng(5);
    for (int frac = 0; frac <= 14; frac += 2) {
        double step = std::pow(2.0, -frac);
        for (int i = 0; i < 200; ++i) {
            double v = rng.uniform(-1.0, 1.0);
            std::int16_t q = quantize16(v, frac);
            double back = dequantize16(q, frac);
            EXPECT_NEAR(back, v, step * 0.5 + 1e-12)
                << "frac=" << frac << " v=" << v;
        }
    }
}

TEST(Quantize16, SaturatesOutOfRange)
{
    EXPECT_EQ(quantize16(10.0, 14), 32767);
    EXPECT_EQ(quantize16(-10.0, 14), -32768);
}

TEST(ChooseFracBits, LeavesHeadroom)
{
    Rng rng(6);
    for (int i = 0; i < 500; ++i) {
        double max_abs = rng.uniform(1e-3, 100.0);
        int frac = chooseFracBits(max_abs);
        ASSERT_GE(frac, 0);
        ASSERT_LE(frac, 14);
        // The maximum magnitude must be representable at that scale.
        double scaled = max_abs * std::pow(2.0, frac);
        EXPECT_LE(scaled, 32768.0) << max_abs;
    }
}

TEST(ChooseFracBits, DegenerateZeroTensorGetsMaxPrecision)
{
    EXPECT_EQ(chooseFracBits(0.0), 14);
    EXPECT_EQ(chooseFracBits(-1.0), 14);
}

TEST(QuantizeBuffer, QuantizesEveryElement)
{
    std::vector<double> v = {0.0, 0.5, -0.5, 0.25};
    auto q = quantizeBuffer(v, 8);
    ASSERT_EQ(q.size(), v.size());
    EXPECT_EQ(q[0], 0);
    EXPECT_EQ(q[1], 128);
    EXPECT_EQ(q[2], -128);
    EXPECT_EQ(q[3], 64);
}

} // namespace
} // namespace diffy
