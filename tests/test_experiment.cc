/**
 * @file
 * Integration tests for the experiment driver: end-to-end speedup and
 * FPS aggregation across scenes, and the headline cross-design
 * orderings of the paper at small scale.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/experiment.hh"

namespace diffy
{
namespace
{

ExperimentParams
smallParams()
{
    ExperimentParams p;
    p.crop = 24;
    p.scenes = 1;
    p.cacheDir = ""; // keep tests hermetic: no disk cache
    return p;
}

TEST(ExperimentParams, CliOverrides)
{
    const char *argv[] = {"prog", "--crop", "32", "--scenes=2",
                          "--mem", "HBM2", "--mem-channels", "2",
                          "--frame-h", "540", "--frame-w", "960",
                          "--cache", ""};
    ExperimentParams p = ExperimentParams::fromCli(13, argv);
    EXPECT_EQ(p.crop, 32);
    EXPECT_EQ(p.scenes, 2);
    EXPECT_EQ(p.memTech, "HBM2");
    EXPECT_EQ(p.memChannels, 2);
    EXPECT_EQ(p.frameHeight, 540);
    EXPECT_EQ(p.frameWidth, 960);
    EXPECT_EQ(experimentMemTech(p).label(), "HBM2-x2");
}

TEST(ExperimentParams, ValidateFlagsBadFields)
{
    ExperimentParams p;
    EXPECT_TRUE(p.validate().ok());

    p.crop = 0;
    p.scenes = -1;
    p.threads = -2;
    ConfigValidation v = p.validate();
    ASSERT_EQ(v.issues.size(), 3u);
    EXPECT_EQ(v.issues[0].field, "crop");
    EXPECT_EQ(v.issues[1].field, "scenes");
    EXPECT_EQ(v.issues[2].field, "threads");
    EXPECT_THROW(p.validated(), std::invalid_argument);
}

TEST(ExperimentParams, ThreadsCliAcceptedAndValidated)
{
    const char *ok[] = {"prog", "--threads", "8"};
    EXPECT_EQ(ExperimentParams::fromCli(3, ok).threads, 8);

    // Non-positive, non-numeric and absurd counts are rejected with a
    // structured error naming the field.
    for (const char *bad : {"0", "-3", "eight", "4096"}) {
        const char *argv[] = {"prog", "--threads", bad};
        try {
            ExperimentParams::fromCli(3, argv);
            FAIL() << "--threads " << bad << " should be rejected";
        } catch (const std::invalid_argument &e) {
            EXPECT_NE(std::string(e.what()).find("threads"),
                      std::string::npos)
                << e.what();
        }
    }
}

TEST(ExperimentParams, FailurePolicyFlagsParsed)
{
    // Defaults: historical fail_fast with no retry and no deadline.
    ExperimentParams defaults;
    EXPECT_FALSE(defaults.keepGoing);
    EXPECT_EQ(defaults.maxRetries, 0);
    EXPECT_EQ(defaults.jobTimeoutMs, 0);

    const char *argv[] = {"prog", "--keep-going", "--max-retries", "2",
                          "--job-timeout-ms", "1500"};
    ExperimentParams p = ExperimentParams::fromCli(6, argv);
    EXPECT_TRUE(p.keepGoing);
    EXPECT_EQ(p.maxRetries, 2);
    EXPECT_EQ(p.jobTimeoutMs, 1500);
}

TEST(ExperimentParams, KeepGoingIsABareFlag)
{
    // --keep-going is declared boolean: it must not swallow the value
    // of a following flag as its own.
    const char *argv[] = {"prog", "--keep-going", "--crop", "32"};
    ExperimentParams p = ExperimentParams::fromCli(4, argv);
    EXPECT_TRUE(p.keepGoing);
    EXPECT_EQ(p.crop, 32);
}

TEST(ExperimentParams, FailurePolicyFlagsValidated)
{
    struct Case
    {
        const char *flag;
        const char *value;
        const char *field;
    };
    const Case cases[] = {
        {"--max-retries", "-1", "maxRetries"},
        {"--max-retries", "500", "maxRetries"},
        {"--job-timeout-ms", "-200", "jobTimeoutMs"},
    };
    for (const Case &c : cases) {
        const char *argv[] = {"prog", c.flag, c.value};
        try {
            ExperimentParams::fromCli(3, argv);
            FAIL() << c.flag << " " << c.value << " should be rejected";
        } catch (const std::invalid_argument &e) {
            EXPECT_NE(std::string(e.what()).find(c.field),
                      std::string::npos)
                << e.what();
        }
    }
}

TEST(TraceSuite, ProducesOneTracePerScene)
{
    ExperimentParams p = smallParams();
    p.scenes = 2;
    auto traced = traceSuite({makeIrCnn()}, p);
    ASSERT_EQ(traced.size(), 1u);
    EXPECT_EQ(traced[0].traces.size(), 2u);
    EXPECT_EQ(traced[0].traces[0].layers.size(), 7u);
    // Different scenes produce different value streams.
    EXPECT_NE(traced[0].traces[0].layers[2].imap,
              traced[0].traces[1].layers[2].imap);
}

TEST(TraceSuite, ClassificationUsesNativeResolution)
{
    ExperimentParams p = smallParams();
    p.classificationCropDivisor = 1;
    NetworkSpec alex = makeAlexNetConv();
    alex.nativeResolution = 96; // shrink for test speed
    auto traced = traceSuite({alex}, p);
    EXPECT_EQ(traced[0].traces[0].frameHeight, 96);

    // With a divisor, the trace crop shrinks but never below the
    // floor that keeps the deepest stage non-degenerate.
    p.classificationCropDivisor = 2;
    auto halved = traceSuite({alex}, p);
    EXPECT_EQ(halved[0].traces[0].frameHeight, 64);
}

TEST(Experiment, HeadlineOrderingDiffyPraVaa)
{
    ExperimentParams p = smallParams();
    auto traced = traceSuite({makeDnCnn()}, p);
    MemTech mem = experimentMemTech(p);

    AcceleratorConfig vaa = defaultVaaConfig();
    AcceleratorConfig pra = defaultPraConfig();
    pra.compression = Compression::DeltaD16;
    AcceleratorConfig dfy = defaultDiffyConfig();

    double pra_speedup = speedupOver(traced[0], pra, vaa, mem, p);
    double dfy_speedup = speedupOver(traced[0], dfy, vaa, mem, p);
    EXPECT_GT(pra_speedup, 1.5);
    EXPECT_GT(dfy_speedup, pra_speedup);
    EXPECT_LT(dfy_speedup, 16.0);
}

TEST(Experiment, FpsConsistentWithSpeedup)
{
    ExperimentParams p = smallParams();
    auto traced = traceSuite({makeIrCnn()}, p);
    MemTech mem = experimentMemTech(p);
    AcceleratorConfig vaa = defaultVaaConfig();
    AcceleratorConfig dfy = defaultDiffyConfig();
    double fps_vaa = averageFps(traced[0], vaa, mem, p);
    double fps_dfy = averageFps(traced[0], dfy, mem, p);
    double speedup = speedupOver(traced[0], dfy, vaa, mem, p);
    EXPECT_NEAR(fps_dfy / fps_vaa, speedup, 1e-9);
}

} // namespace
} // namespace diffy
