/**
 * @file
 * Tests for the statistics helpers: running moments, histograms,
 * entropies and the joint histogram used for H(A|A').
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "common/stats.hh"

namespace diffy
{
namespace
{

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 1e-3); // sample stddev
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeEqualsSequential)
{
    Rng rng(3);
    RunningStat all, a, b;
    for (int i = 0; i < 1000; ++i) {
        double v = rng.gaussian(3.0, 1.5);
        all.add(v);
        (i % 2 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeSingletonSumExact)
{
    // Regression: sum() used to be reconstructed as mean_ * n, which
    // drifts once mean_ has absorbed ~1e6 incremental updates. The
    // directly-accumulated sum must match the serial sum bit-exactly
    // (identical addition order: one add per singleton merge).
    const int n = 1000000;
    double serial = 0.0;
    RunningStat merged;
    Rng rng(11);
    for (int i = 0; i < n; ++i) {
        double v = rng.uniform() * 1e3 + 0.1;
        serial += v;
        RunningStat single;
        single.add(v);
        merged.merge(single);
    }
    EXPECT_EQ(merged.count(), static_cast<std::uint64_t>(n));
    EXPECT_DOUBLE_EQ(merged.sum(), serial);
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(1.0);
    a.add(2.0);
    a.merge(b); // empty rhs: no change
    EXPECT_EQ(a.count(), 2u);
    b.merge(a); // empty lhs: copy
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Histogram, UniformEntropyIsLogN)
{
    Histogram h;
    for (int s = 0; s < 16; ++s)
        h.add(s, 10);
    EXPECT_NEAR(h.entropyBits(), 4.0, 1e-12);
}

TEST(Histogram, DegenerateEntropyIsZero)
{
    Histogram h;
    h.add(42, 1000);
    EXPECT_DOUBLE_EQ(h.entropyBits(), 0.0);
    EXPECT_DOUBLE_EQ(h.fractionAt(42), 1.0);
    EXPECT_DOUBLE_EQ(h.fractionAt(7), 0.0);
}

TEST(Histogram, QuantileAndMean)
{
    Histogram h;
    for (int s = 1; s <= 100; ++s)
        h.add(s);
    EXPECT_EQ(h.quantile(0.5), 50);
    EXPECT_EQ(h.quantile(0.999), 100);
    EXPECT_EQ(h.quantile(0.01), 1);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(Histogram, CdfIsMonotoneAndEndsAtOne)
{
    Histogram h;
    Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        h.add(static_cast<std::int64_t>(rng.below(20)));
    auto cdf = h.cdf();
    double prev = 0.0;
    for (const auto &[sym, p] : cdf) {
        EXPECT_GE(p, prev);
        prev = p;
    }
    EXPECT_NEAR(cdf.back().second, 1.0, 1e-12);
}

TEST(Histogram, MergeAddsCounts)
{
    Histogram a, b;
    a.add(1, 3);
    b.add(1, 2);
    b.add(2, 5);
    a.merge(b);
    EXPECT_EQ(a.countOf(1), 5u);
    EXPECT_EQ(a.countOf(2), 5u);
    EXPECT_EQ(a.total(), 10u);
}

TEST(JointHistogram, IndependentVariablesConditionalEqualsMarginal)
{
    // For independent A, B: H(A|B) == H(A).
    Rng rng(6);
    JointHistogram joint;
    Histogram marginal_a;
    for (int i = 0; i < 60000; ++i) {
        auto a = static_cast<std::int32_t>(rng.below(8));
        auto b = static_cast<std::int32_t>(rng.below(8));
        joint.add(a, b);
        marginal_a.add(a);
    }
    EXPECT_NEAR(joint.conditionalEntropyBits(), marginal_a.entropyBits(),
                0.02);
}

TEST(JointHistogram, DeterministicDependenceGivesZeroConditional)
{
    // A == B: knowing B reveals A entirely.
    JointHistogram joint;
    for (int i = 0; i < 1024; ++i)
        joint.add(i % 16, i % 16);
    EXPECT_NEAR(joint.conditionalEntropyBits(), 0.0, 1e-12);
    EXPECT_NEAR(joint.jointEntropyBits(), 4.0, 1e-12);
    EXPECT_NEAR(joint.marginalEntropyBBits(), 4.0, 1e-12);
}

TEST(JointHistogram, ConditionalNeverExceedsJoint)
{
    Rng rng(7);
    JointHistogram joint;
    for (int i = 0; i < 5000; ++i) {
        auto b = static_cast<std::int32_t>(rng.below(32));
        auto a = b + static_cast<std::int32_t>(rng.below(3));
        joint.add(a, b);
    }
    EXPECT_LE(joint.conditionalEntropyBits(), joint.jointEntropyBits());
    EXPECT_GE(joint.conditionalEntropyBits(), 0.0);
}

TEST(GeometricMean, MatchesHandComputed)
{
    EXPECT_NEAR(geometricMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
}

} // namespace
} // namespace diffy
