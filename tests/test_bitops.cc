/**
 * @file
 * Unit and property tests for the Booth-term and bit-width utilities
 * that drive all term-serial timing models.
 */

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "common/rng.hh"

namespace diffy
{
namespace
{

TEST(BoothTerms, ZeroHasNoTerms)
{
    EXPECT_EQ(boothTerms(0), 0);
}

TEST(BoothTerms, PowersOfTwoHaveOneTerm)
{
    for (int e = 0; e < 30; ++e) {
        EXPECT_EQ(boothTerms(std::int64_t{1} << e), 1) << "2^" << e;
        EXPECT_EQ(boothTerms(-(std::int64_t{1} << e)), 1) << "-2^" << e;
    }
}

TEST(BoothTerms, KnownSmallValues)
{
    // 3 = 4 - 1, 7 = 8 - 1, 5 = 4 + 1: two terms each.
    EXPECT_EQ(boothTerms(3), 2);
    EXPECT_EQ(boothTerms(5), 2);
    EXPECT_EQ(boothTerms(7), 2);
    // 0b0101 0101 = 85: NAF cannot merge isolated ones -> 4 terms.
    EXPECT_EQ(boothTerms(85), 4);
    // All-ones runs collapse: 0xFF = 256 - 1.
    EXPECT_EQ(boothTerms(0xFF), 2);
    EXPECT_EQ(boothTerms(0xFFFF), 2);
}

TEST(BoothTerms, SymmetricUnderNegation)
{
    Rng rng(42);
    for (int i = 0; i < 2000; ++i) {
        auto v = static_cast<std::int64_t>(rng.below(1 << 16)) - (1 << 15);
        EXPECT_EQ(boothTerms(v), boothTerms(-v)) << v;
    }
}

TEST(BoothTerms, NeverMoreThanOnesTermsPlusOne)
{
    // NAF is minimal; it never exceeds the plain popcount, and the
    // popcount never exceeds NAF terms by more than ~2x.
    Rng rng(43);
    for (int i = 0; i < 2000; ++i) {
        auto v = static_cast<std::int64_t>(rng.below(1 << 16)) - (1 << 15);
        EXPECT_LE(boothTerms(v), onesTerms(v) + 1) << v;
    }
}

TEST(BoothDecompose, RoundTripsRandomValues)
{
    Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
        auto v = static_cast<std::int64_t>(rng.below(1 << 17)) - (1 << 16);
        auto terms = boothDecompose(v);
        EXPECT_EQ(boothReconstruct(terms), v);
        EXPECT_EQ(static_cast<int>(terms.size()), boothTerms(v));
    }
}

TEST(BoothDecompose, ProducesNonAdjacentDigits)
{
    Rng rng(8);
    for (int i = 0; i < 1000; ++i) {
        auto v = static_cast<std::int64_t>(rng.below(1 << 16)) - (1 << 15);
        auto terms = boothDecompose(v);
        std::vector<int> exponents;
        for (int t : terms)
            exponents.push_back(t >= 0 ? t : -t - 1);
        for (std::size_t j = 1; j < exponents.size(); ++j) {
            EXPECT_GE(std::abs(exponents[j] - exponents[j - 1]), 2)
                << "adjacent digits for " << v;
        }
    }
}

TEST(OnesTerms, CountsMagnitudeBits)
{
    EXPECT_EQ(onesTerms(0), 0);
    EXPECT_EQ(onesTerms(1), 1);
    EXPECT_EQ(onesTerms(-1), 1);
    EXPECT_EQ(onesTerms(0b1011), 3);
    EXPECT_EQ(onesTerms(-0b1011), 3);
}

TEST(BitsNeeded, MatchesTwoComplementBounds)
{
    EXPECT_EQ(bitsNeeded(0), 1);
    EXPECT_EQ(bitsNeeded(1), 2);   // 01
    EXPECT_EQ(bitsNeeded(-1), 1);  // 1
    EXPECT_EQ(bitsNeeded(-2), 2);  // 10
    EXPECT_EQ(bitsNeeded(3), 3);   // 011
    EXPECT_EQ(bitsNeeded(-4), 3);  // 100
    EXPECT_EQ(bitsNeeded(-5), 4);
    EXPECT_EQ(bitsNeeded(127), 8);
    EXPECT_EQ(bitsNeeded(-128), 8);
    EXPECT_EQ(bitsNeeded(128), 9);
    EXPECT_EQ(bitsNeeded(32767), 16);
    EXPECT_EQ(bitsNeeded(-32768), 16);
}

TEST(BitsNeeded, ValueRepresentableAtReportedWidth)
{
    Rng rng(11);
    for (int i = 0; i < 5000; ++i) {
        auto v = static_cast<std::int64_t>(rng.below(1 << 16)) - (1 << 15);
        int bits = bitsNeeded(v);
        ASSERT_GE(bits, 1);
        ASSERT_LE(bits, 16);
        // v must fit in `bits` and not in `bits - 1`.
        std::int64_t lo = -(std::int64_t{1} << (bits - 1));
        std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
        EXPECT_GE(v, lo);
        EXPECT_LE(v, hi);
        if (bits > 1) {
            std::int64_t lo2 = -(std::int64_t{1} << (bits - 2));
            std::int64_t hi2 = (std::int64_t{1} << (bits - 2)) - 1;
            EXPECT_TRUE(v < lo2 || v > hi2) << v << " fits " << bits - 1;
        }
    }
}

TEST(GroupBitsNeeded, TakesGroupMaximum)
{
    std::int16_t group[4] = {0, 3, -7, 1};
    EXPECT_EQ(groupBitsNeeded(group, 4), 4); // -7 needs 4 bits
    std::int16_t zeros[3] = {0, 0, 0};
    EXPECT_EQ(groupBitsNeeded(zeros, 3), 1);
    EXPECT_EQ(groupBitsNeeded(nullptr, 0), 1);
}

/** Property sweep: term counts of deltas of correlated sequences. */
class BoothDeltaProperty : public ::testing::TestWithParam<int>
{};

TEST_P(BoothDeltaProperty, CorrelatedStreamsHaveCheaperDeltas)
{
    // A slowly varying sequence must have fewer delta terms than raw
    // terms in aggregate — the paper's core premise, stated on the
    // recoding itself.
    const int step_bound = GetParam();
    Rng rng(100 + step_bound);
    std::int32_t prev = 1000;
    std::int64_t raw_terms = 0;
    std::int64_t delta_terms = 0;
    for (int i = 0; i < 4000; ++i) {
        std::int32_t cur =
            prev + static_cast<std::int32_t>(rng.below(2 * step_bound + 1))
            - step_bound;
        cur = std::max(0, std::min(32767, cur));
        raw_terms += boothTerms(cur);
        delta_terms += boothTerms(cur - prev);
        prev = cur;
    }
    EXPECT_LT(delta_terms, raw_terms) << "step bound " << step_bound;
}

INSTANTIATE_TEST_SUITE_P(StepBounds, BoothDeltaProperty,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

} // namespace
} // namespace diffy
