/**
 * @file
 * Unit and property tests for the Booth-term and bit-width utilities
 * that drive all term-serial timing models.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/bitops.hh"
#include "common/rng.hh"
#include "common/simd.hh"

namespace diffy
{
namespace
{

TEST(BoothTerms, ZeroHasNoTerms)
{
    EXPECT_EQ(boothTerms(0), 0);
}

TEST(BoothTerms, PowersOfTwoHaveOneTerm)
{
    for (int e = 0; e < 30; ++e) {
        EXPECT_EQ(boothTerms(std::int64_t{1} << e), 1) << "2^" << e;
        EXPECT_EQ(boothTerms(-(std::int64_t{1} << e)), 1) << "-2^" << e;
    }
}

TEST(BoothTerms, KnownSmallValues)
{
    // 3 = 4 - 1, 7 = 8 - 1, 5 = 4 + 1: two terms each.
    EXPECT_EQ(boothTerms(3), 2);
    EXPECT_EQ(boothTerms(5), 2);
    EXPECT_EQ(boothTerms(7), 2);
    // 0b0101 0101 = 85: NAF cannot merge isolated ones -> 4 terms.
    EXPECT_EQ(boothTerms(85), 4);
    // All-ones runs collapse: 0xFF = 256 - 1.
    EXPECT_EQ(boothTerms(0xFF), 2);
    EXPECT_EQ(boothTerms(0xFFFF), 2);
}

TEST(BoothTerms, SymmetricUnderNegation)
{
    Rng rng(42);
    for (int i = 0; i < 2000; ++i) {
        auto v = static_cast<std::int64_t>(rng.below(1 << 16)) - (1 << 15);
        EXPECT_EQ(boothTerms(v), boothTerms(-v)) << v;
    }
}

TEST(BoothTerms, NeverMoreThanOnesTermsPlusOne)
{
    // NAF is minimal; it never exceeds the plain popcount, and the
    // popcount never exceeds NAF terms by more than ~2x.
    Rng rng(43);
    for (int i = 0; i < 2000; ++i) {
        auto v = static_cast<std::int64_t>(rng.below(1 << 16)) - (1 << 15);
        EXPECT_LE(boothTerms(v), onesTerms(v) + 1) << v;
    }
}

TEST(BoothTerms, BitParallelMatchesDecompositionExhaustivelyInt16)
{
    // The O(1) popcount(v ^ 3v) NAF identity must agree with the
    // digit-stripping decomposition over the entire int16 domain —
    // the domain every simulator call site draws from.
    for (int v = -32768; v <= 32767; ++v) {
        ASSERT_EQ(boothTerms(v),
                  static_cast<int>(boothDecompose(v).size()))
            << v;
    }
}

TEST(BoothTerms, BitParallelMatchesDecompositionAtWideMagnitudes)
{
    Rng rng(19);
    for (int i = 0; i < 2000; ++i) {
        std::int64_t v =
            static_cast<std::int64_t>(rng.next()) >> (i % 40);
        EXPECT_EQ(boothTerms(v),
                  static_cast<int>(boothDecompose(v).size()))
            << v;
    }
    EXPECT_EQ(boothTerms(std::int64_t{1} << 62), 1);
    EXPECT_EQ(boothTerms(-(std::int64_t{1} << 62)), 1);
}

TEST(BoothTermsPlane, MatchesScalarOnRandomValues)
{
    Rng rng(21);
    std::vector<std::int16_t> src(1037); // odd length: exercises tails
    for (auto &v : src)
        v = static_cast<std::int16_t>(rng.below(65536) - 32768);
    src[0] = 0;
    src[1] = 32767;
    src[2] = -32768;
    std::vector<std::uint8_t> dst(src.size());
    boothTermsPlane(src.data(), dst.data(), src.size());
    for (std::size_t i = 0; i < src.size(); ++i)
        ASSERT_EQ(dst[i], boothTerms(src[i])) << "i=" << i;
}

TEST(BoothTermsPlane, MatchesScalarOnCorrelatedDeltas)
{
    // int32 overload, fed the 17-bit deltas of a slowly varying
    // stream — exactly what computeTermTensors() stages per row.
    Rng rng(23);
    std::vector<std::int32_t> src;
    std::int32_t prev = 1000;
    for (int i = 0; i < 4000; ++i) {
        std::int32_t cur = std::max(
            0, std::min(32767,
                        prev + static_cast<std::int32_t>(rng.below(33)) -
                            16));
        src.push_back(cur - prev);
        prev = cur;
    }
    src.push_back(65535);
    src.push_back(-65535);
    std::vector<std::uint8_t> dst(src.size());
    boothTermsPlane(src.data(), dst.data(), src.size());
    for (std::size_t i = 0; i < src.size(); ++i)
        ASSERT_EQ(dst[i], boothTerms(src[i])) << "i=" << i;
}

TEST(BitsNeededPlane, MatchesScalar)
{
    std::vector<std::int16_t> src16;
    for (int v = -2048; v <= 2048; ++v)
        src16.push_back(static_cast<std::int16_t>(v));
    src16.push_back(32767);
    src16.push_back(-32768);
    std::vector<std::uint8_t> dst(src16.size());
    bitsNeededPlane(src16.data(), dst.data(), src16.size());
    for (std::size_t i = 0; i < src16.size(); ++i)
        ASSERT_EQ(dst[i], bitsNeeded(src16[i])) << src16[i];

    std::vector<std::int32_t> src32 = {0,     1,      -1,    -65535,
                                       65535, -32768, 32767, 123456};
    dst.assign(src32.size(), 0);
    bitsNeededPlane(src32.data(), dst.data(), src32.size());
    for (std::size_t i = 0; i < src32.size(); ++i)
        ASSERT_EQ(dst[i], bitsNeeded(src32[i])) << src32[i];
}

TEST(BoothDecompose, RoundTripsRandomValues)
{
    Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
        auto v = static_cast<std::int64_t>(rng.below(1 << 17)) - (1 << 16);
        auto terms = boothDecompose(v);
        EXPECT_EQ(boothReconstruct(terms), v);
        EXPECT_EQ(static_cast<int>(terms.size()), boothTerms(v));
    }
}

TEST(BoothDecompose, ProducesNonAdjacentDigits)
{
    Rng rng(8);
    for (int i = 0; i < 1000; ++i) {
        auto v = static_cast<std::int64_t>(rng.below(1 << 16)) - (1 << 15);
        auto terms = boothDecompose(v);
        std::vector<int> exponents;
        for (int t : terms)
            exponents.push_back(t >= 0 ? t : -t - 1);
        for (std::size_t j = 1; j < exponents.size(); ++j) {
            EXPECT_GE(std::abs(exponents[j] - exponents[j - 1]), 2)
                << "adjacent digits for " << v;
        }
    }
}

TEST(OnesTerms, CountsMagnitudeBits)
{
    EXPECT_EQ(onesTerms(0), 0);
    EXPECT_EQ(onesTerms(1), 1);
    EXPECT_EQ(onesTerms(-1), 1);
    EXPECT_EQ(onesTerms(0b1011), 3);
    EXPECT_EQ(onesTerms(-0b1011), 3);
}

TEST(BitsNeeded, MatchesTwoComplementBounds)
{
    EXPECT_EQ(bitsNeeded(0), 1);
    EXPECT_EQ(bitsNeeded(1), 2);   // 01
    EXPECT_EQ(bitsNeeded(-1), 1);  // 1
    EXPECT_EQ(bitsNeeded(-2), 2);  // 10
    EXPECT_EQ(bitsNeeded(3), 3);   // 011
    EXPECT_EQ(bitsNeeded(-4), 3);  // 100
    EXPECT_EQ(bitsNeeded(-5), 4);
    EXPECT_EQ(bitsNeeded(127), 8);
    EXPECT_EQ(bitsNeeded(-128), 8);
    EXPECT_EQ(bitsNeeded(128), 9);
    EXPECT_EQ(bitsNeeded(32767), 16);
    EXPECT_EQ(bitsNeeded(-32768), 16);
}

TEST(BitsNeeded, ValueRepresentableAtReportedWidth)
{
    Rng rng(11);
    for (int i = 0; i < 5000; ++i) {
        auto v = static_cast<std::int64_t>(rng.below(1 << 16)) - (1 << 15);
        int bits = bitsNeeded(v);
        ASSERT_GE(bits, 1);
        ASSERT_LE(bits, 16);
        // v must fit in `bits` and not in `bits - 1`.
        std::int64_t lo = -(std::int64_t{1} << (bits - 1));
        std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
        EXPECT_GE(v, lo);
        EXPECT_LE(v, hi);
        if (bits > 1) {
            std::int64_t lo2 = -(std::int64_t{1} << (bits - 2));
            std::int64_t hi2 = (std::int64_t{1} << (bits - 2)) - 1;
            EXPECT_TRUE(v < lo2 || v > hi2) << v << " fits " << bits - 1;
        }
    }
}

TEST(ContentHash64, GoldenValues)
{
    // Pinned outputs of the 8-bytes-per-step mixer. The hash keys
    // in-memory memo caches only (pallet walks, footprint
    // measurements), so changing it merely invalidates those caches
    // once per process — but it must stay deterministic across runs
    // and builds of one library version. If you intentionally change
    // the mixing, update these values and note the cache-key change
    // in the commit message.
    EXPECT_EQ(contentHash64(nullptr, 0), 0xEFD01F60BA992926ULL);
    const char abc[] = "abc";
    EXPECT_EQ(contentHash64(abc, 3), 0x2AF526A9A8F57274ULL);
    const char s16[] = "0123456789ABCDEF";
    EXPECT_EQ(contentHash64(s16, 16), 0x1005C5D320178D75ULL);
    EXPECT_EQ(contentHash64(s16, 13), 0xC0E6FE0AC972810DULL);
    std::vector<std::int16_t> ramp(256);
    for (int i = 0; i < 256; ++i)
        ramp[i] = static_cast<std::int16_t>(i * 257 - 32768);
    // Inputs of >= 32 bytes go through the striped lane mixer (see
    // hashStripes in common/simd.hh); this golden changed when that
    // landed. Shorter inputs still use the original 8-byte mixer and
    // their goldens above are unchanged.
    EXPECT_EQ(contentHash64(ramp.data(), ramp.size() * 2),
              0x9652834E37788420ULL);
    EXPECT_EQ(contentHash64(abc, 3, 1), 0x7EFAAAE78ECAD9A9ULL);
}

TEST(ContentHash64, SensitiveToLengthSeedAndContent)
{
    const char buf[] = "0123456789ABCDEF0123456789ABCDEF";
    EXPECT_NE(contentHash64(buf, 32), contentHash64(buf, 31));
    EXPECT_NE(contentHash64(buf, 32), contentHash64(buf, 32, 1));
    char mutated[32];
    for (int i = 0; i < 32; ++i)
        mutated[i] = buf[i];
    mutated[17] ^= 1;
    EXPECT_NE(contentHash64(buf, 32), contentHash64(mutated, 32));
}

TEST(GroupBitsNeeded, TakesGroupMaximum)
{
    std::int16_t group[4] = {0, 3, -7, 1};
    EXPECT_EQ(groupBitsNeeded(group, 4), 4); // -7 needs 4 bits
    std::int16_t zeros[3] = {0, 0, 0};
    EXPECT_EQ(groupBitsNeeded(zeros, 3), 1);
    EXPECT_EQ(groupBitsNeeded(nullptr, 0), 1);
}

/** Property sweep: term counts of deltas of correlated sequences. */
class BoothDeltaProperty : public ::testing::TestWithParam<int>
{};

TEST_P(BoothDeltaProperty, CorrelatedStreamsHaveCheaperDeltas)
{
    // A slowly varying sequence must have fewer delta terms than raw
    // terms in aggregate — the paper's core premise, stated on the
    // recoding itself.
    const int step_bound = GetParam();
    Rng rng(100 + step_bound);
    std::int32_t prev = 1000;
    std::int64_t raw_terms = 0;
    std::int64_t delta_terms = 0;
    for (int i = 0; i < 4000; ++i) {
        std::int32_t cur =
            prev + static_cast<std::int32_t>(rng.below(2 * step_bound + 1))
            - step_bound;
        cur = std::max(0, std::min(32767, cur));
        raw_terms += boothTerms(cur);
        delta_terms += boothTerms(cur - prev);
        prev = cur;
    }
    EXPECT_LT(delta_terms, raw_terms) << "step bound " << step_bound;
}

INSTANTIATE_TEST_SUITE_P(StepBounds, BoothDeltaProperty,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(SimdDispatch, ScalarTableAlwaysAvailable)
{
    const auto isas = simd::availableIsas();
    ASSERT_FALSE(isas.empty());
    EXPECT_EQ(isas.front(), simd::Isa::Scalar);
    const simd::KernelTable *scalar = simd::table(simd::Isa::Scalar);
    ASSERT_NE(scalar, nullptr);
    EXPECT_EQ(scalar, &simd::scalarTable());
    EXPECT_EQ(scalar->isa, simd::Isa::Scalar);
}

TEST(SimdDispatch, IsaNamesRoundTrip)
{
    for (simd::Isa isa : {simd::Isa::Scalar, simd::Isa::Sse4,
                          simd::Isa::Avx2, simd::Isa::Neon}) {
        simd::Isa parsed;
        ASSERT_TRUE(simd::parseIsa(simd::isaName(isa), parsed))
            << simd::isaName(isa);
        EXPECT_EQ(parsed, isa);
    }
    simd::Isa ignored;
    EXPECT_FALSE(simd::parseIsa("mmx", ignored));
    EXPECT_FALSE(simd::parseIsa("", ignored));
}

TEST(SimdDispatch, DispatchedTableIsAvailableAndConsistent)
{
    const auto isas = simd::availableIsas();
    EXPECT_EQ(simd::kernels().isa, simd::activeIsa());
    EXPECT_NE(std::find(isas.begin(), isas.end(), simd::activeIsa()),
              isas.end());
    EXPECT_NE(std::find(isas.begin(), isas.end(), simd::bestIsa()),
              isas.end());
    // Every available table exposes a complete kernel set.
    for (simd::Isa isa : isas) {
        const simd::KernelTable *t = simd::table(isa);
        ASSERT_NE(t, nullptr) << simd::isaName(isa);
        EXPECT_EQ(t->isa, isa);
        EXPECT_NE(t->boothTermsPlane16, nullptr);
        EXPECT_NE(t->boothTermsPlane32, nullptr);
        EXPECT_NE(t->bitsNeededPlane16, nullptr);
        EXPECT_NE(t->bitsNeededPlane32, nullptr);
        EXPECT_NE(t->groupBits16, nullptr);
        EXPECT_NE(t->groupBits32, nullptr);
        EXPECT_NE(t->deltaBits16, nullptr);
        EXPECT_NE(t->addSat16, nullptr);
        EXPECT_NE(t->walkSumMax, nullptr);
        EXPECT_NE(t->hashStripes, nullptr);
    }
}

/**
 * Differential fuzz: every compiled-in vector table must match the
 * scalar oracle element-exactly on every kernel, across the widths
 * that exercise full chunks, partial chunks and scalar tails. The
 * suite is parameterized over availableIsas(), so on an AVX2 host it
 * checks SSE4 and AVX2 against scalar; under ASan/TSan the same tests
 * double as an out-of-bounds probe for the chunked loads.
 */
class SimdKernelOracle : public ::testing::TestWithParam<simd::Isa>
{
  protected:
    const simd::KernelTable &vec() { return *simd::table(GetParam()); }
    const simd::KernelTable &ref() { return simd::scalarTable(); }

    /** Widths around every chunk boundary plus a bulk width. */
    static std::vector<std::size_t>
    fuzzWidths()
    {
        std::vector<std::size_t> w;
        for (std::size_t n = 0; n <= 33; ++n)
            w.push_back(n);
        w.push_back(1037);
        return w;
    }

    static std::vector<std::int16_t>
    randomI16(Rng &rng, std::size_t n)
    {
        std::vector<std::int16_t> v(n);
        for (auto &x : v)
            x = static_cast<std::int16_t>(rng.below(65536) - 32768);
        // Plant the domain extremes where any width sees them.
        const std::int16_t edge[] = {0, 1, -1, 32767, -32768};
        for (std::size_t i = 0; i < n && i < 5; ++i)
            v[i] = edge[i];
        return v;
    }

    static std::vector<std::int32_t>
    randomI32(Rng &rng, std::size_t n)
    {
        std::vector<std::int32_t> v(n);
        for (auto &x : v) {
            // Mix the codec-range deltas the call sites produce with
            // full-domain values that force the 64-bit NAF fallback
            // (sign-folded magnitude >= 2^29).
            const std::uint64_t r = rng.next();
            if ((r & 3) == 0)
                x = static_cast<std::int32_t>(r);
            else
                x = static_cast<std::int32_t>(r % 262144) - 131072;
        }
        const std::int32_t edge[] = {0,
                                     std::numeric_limits<std::int32_t>::max(),
                                     std::numeric_limits<std::int32_t>::min(),
                                     (1 << 29) - 1,
                                     (1 << 29),
                                     -(1 << 29) - 1,
                                     65535,
                                     -65535};
        for (std::size_t i = 0; i < n && i < 8; ++i)
            v[i] = edge[i];
        return v;
    }
};

TEST_P(SimdKernelOracle, BoothAndBitsPlanesMatchScalar)
{
    Rng rng(301);
    for (std::size_t n : fuzzWidths()) {
        const auto s16 = randomI16(rng, n);
        const auto s32 = randomI32(rng, n);
        std::vector<std::uint8_t> got(n + 1, 0xAB), want(n + 1, 0xAB);
        vec().boothTermsPlane16(s16.data(), got.data(), n);
        ref().boothTermsPlane16(s16.data(), want.data(), n);
        ASSERT_EQ(got, want) << "boothTermsPlane16 n=" << n;
        vec().boothTermsPlane32(s32.data(), got.data(), n);
        ref().boothTermsPlane32(s32.data(), want.data(), n);
        ASSERT_EQ(got, want) << "boothTermsPlane32 n=" << n;
        vec().bitsNeededPlane16(s16.data(), got.data(), n);
        ref().bitsNeededPlane16(s16.data(), want.data(), n);
        ASSERT_EQ(got, want) << "bitsNeededPlane16 n=" << n;
        vec().bitsNeededPlane32(s32.data(), got.data(), n);
        ref().bitsNeededPlane32(s32.data(), want.data(), n);
        ASSERT_EQ(got, want) << "bitsNeededPlane32 n=" << n;
    }
}

TEST_P(SimdKernelOracle, GroupReductionsMatchScalar)
{
    Rng rng(302);
    for (std::size_t n : fuzzWidths()) {
        const auto s16 = randomI16(rng, n);
        const auto s32 = randomI32(rng, n);
        ASSERT_EQ(vec().groupBits16(s16.data(), n),
                  ref().groupBits16(s16.data(), n))
            << "n=" << n;
        ASSERT_EQ(vec().groupBits32(s32.data(), n),
                  ref().groupBits32(s32.data(), n))
            << "n=" << n;
    }
}

TEST_P(SimdKernelOracle, TemporalDeltaKernelsMatchScalar)
{
    Rng rng(303);
    for (std::size_t n : fuzzWidths()) {
        const auto prev = randomI16(rng, n);
        const auto cur = randomI16(rng, n);
        std::vector<std::int32_t> dgot(n + 1, -7), dwant(n + 1, -7);
        const int bgot = vec().deltaBits16(prev.data(), cur.data(),
                                           dgot.data(), n);
        const int bwant = ref().deltaBits16(prev.data(), cur.data(),
                                            dwant.data(), n);
        ASSERT_EQ(bgot, bwant) << "deltaBits16 n=" << n;
        ASSERT_EQ(dgot, dwant) << "deltaBits16 n=" << n;

        // addSat16 under its 18-signed-bit delta contract, including
        // deltas that saturate the int16 output in both directions.
        std::vector<std::int32_t> deltas(n);
        for (auto &d : deltas)
            d = static_cast<std::int32_t>(rng.below(262144)) - 131072;
        if (n > 1) {
            deltas[0] = 131071;
            deltas[n - 1] = -131072;
        }
        std::vector<std::int16_t> ogot(n + 1, 99), owant(n + 1, 99);
        vec().addSat16(prev.data(), deltas.data(), ogot.data(), n);
        ref().addSat16(prev.data(), deltas.data(), owant.data(), n);
        ASSERT_EQ(ogot, owant) << "addSat16 n=" << n;
    }
}

TEST_P(SimdKernelOracle, WalkSumMaxMatchesScalar)
{
    Rng rng(304);
    for (std::size_t rows : {std::size_t{1}, std::size_t{2},
                             std::size_t{7}, std::size_t{16},
                             std::size_t{17}}) {
        for (int cols = 0; cols <= 33; ++cols) {
            for (int stride = 1; stride <= 3; ++stride) {
                // Row stride leaves a gap after the last column so
                // in-row overreads would still be inside the buffer
                // but corrupt the checksum; ASan runs catch true
                // out-of-buffer reads at the final row's tail.
                const std::size_t row_stride =
                    static_cast<std::size_t>(cols) * stride + 5;
                std::vector<std::uint8_t> base(
                    rows * row_stride + 1, 0);
                base.resize(
                    (rows - 1) * row_stride +
                    static_cast<std::size_t>(cols ? (cols - 1) * stride
                                                  : 0) + 1);
                for (auto &b : base)
                    b = static_cast<std::uint8_t>(rng.below(34));
                std::vector<std::uint8_t> mgot(cols + 1, 0xCD);
                std::vector<std::uint8_t> mwant(cols + 1, 0xCD);
                const std::int64_t sgot =
                    vec().walkSumMax(base.data(), row_stride, rows,
                                     stride, mgot.data(), cols);
                const std::int64_t swant =
                    ref().walkSumMax(base.data(), row_stride, rows,
                                     stride, mwant.data(), cols);
                ASSERT_EQ(sgot, swant) << "rows=" << rows
                                       << " cols=" << cols
                                       << " stride=" << stride;
                ASSERT_EQ(mgot, mwant) << "rows=" << rows
                                       << " cols=" << cols
                                       << " stride=" << stride;
            }
        }
    }
}

TEST_P(SimdKernelOracle, HashStripesMatchesScalar)
{
    Rng rng(305);
    for (std::size_t stripes = 0; stripes <= 9; ++stripes) {
        std::vector<unsigned char> buf(stripes * 32);
        for (auto &b : buf)
            b = static_cast<unsigned char>(rng.below(256));
        std::uint32_t agot[8], awant[8];
        for (int l = 0; l < 8; ++l)
            agot[l] = awant[l] = static_cast<std::uint32_t>(rng.next());
        vec().hashStripes(buf.data(), stripes, agot);
        ref().hashStripes(buf.data(), stripes, awant);
        for (int l = 0; l < 8; ++l)
            ASSERT_EQ(agot[l], awant[l])
                << "stripes=" << stripes << " lane=" << l;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AvailableIsas, SimdKernelOracle,
    ::testing::ValuesIn(simd::availableIsas()),
    [](const ::testing::TestParamInfo<simd::Isa> &info) {
        return std::string(simd::isaName(info.param));
    });

} // namespace
} // namespace diffy
