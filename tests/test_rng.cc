/**
 * @file
 * Tests for the deterministic random number generator.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace diffy
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(10);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(-3.0, 7.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 7.0);
    }
}

TEST(Rng, BelowStaysBelow)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i)
        ASSERT_LT(rng.below(17), 17u);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(12);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, SeedFromStringIsStableAndDistinct)
{
    auto s1 = Rng::seedFromString("DnCNN/conv_1");
    auto s2 = Rng::seedFromString("DnCNN/conv_1");
    auto s3 = Rng::seedFromString("DnCNN/conv_2");
    EXPECT_EQ(s1, s2);
    EXPECT_NE(s1, s3);
}

} // namespace
} // namespace diffy
