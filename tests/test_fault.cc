/**
 * @file
 * Tests for the fault-injection subsystem and the hardened decode
 * path: deterministic replay, header/payload targeting, propagation
 * bounds under re-anchoring, and a randomized corrupt-input sweep
 * asserting every codec survives >= 10k mutated/truncated streams
 * without a crash (run under ASan/UBSan by the sanitize CI job).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "encode/schemes.hh"
#include "fault/fault.hh"
#include "fault/propagation.hh"

namespace diffy
{
namespace
{

/** Smooth ReLU-like tensor: the regime where DeltaD shines. */
TensorI16
smoothTensor(std::uint64_t seed, int c = 4, int h = 8, int w = 64)
{
    Rng rng(seed);
    TensorI16 t(c, h, w);
    for (int ch = 0; ch < c; ++ch) {
        for (int y = 0; y < h; ++y) {
            std::int32_t level = 2000 + static_cast<std::int32_t>(
                                            rng.below(2000));
            for (int x = 0; x < w; ++x) {
                level += static_cast<std::int32_t>(rng.below(9)) - 4;
                t.at(ch, y, x) = static_cast<std::int16_t>(level);
            }
        }
    }
    return t;
}

// ---------------------------------------------------------------
// FaultInjector determinism and targeting
// ---------------------------------------------------------------

TEST(FaultInjector, SameSeedSameFlips)
{
    auto codec = makeDeltaDCodec(16);
    TensorI16 t = smoothTensor(1);
    EncodedTensor a = codec->encode(t);
    EncodedTensor b = a;

    FaultSpec spec;
    spec.model = FaultModel::SingleBit;
    spec.flips = 5;
    FaultInjector ia(42), ib(42);
    FaultReport ra = ia.inject(a, spec);
    FaultReport rb = ib.inject(b, spec);
    EXPECT_EQ(ra, rb);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(ra.flippedBits.size(), 5u);
}

TEST(FaultInjector, DifferentSeedDifferentFlips)
{
    auto codec = makeDeltaDCodec(16);
    TensorI16 t = smoothTensor(1);
    EncodedTensor a = codec->encode(t);
    EncodedTensor b = a;
    FaultSpec spec;
    spec.flips = 5;
    FaultInjector ia(42), ib(43);
    EXPECT_NE(ia.inject(a, spec), ib.inject(b, spec));
}

TEST(FaultInjector, SequenceReplaysFromOneSeed)
{
    auto codec = makeRawDCodec(16);
    TensorI16 t = smoothTensor(2);
    FaultSpec spec;
    spec.model = FaultModel::BitRate;
    spec.bitErrorRate = 1e-3;

    auto run = [&] {
        FaultInjector inj(7);
        std::vector<FaultReport> reports;
        for (int k = 0; k < 4; ++k) {
            EncodedTensor enc = codec->encode(t);
            reports.push_back(inj.inject(enc, spec));
        }
        return reports;
    };
    EXPECT_EQ(run(), run());
}

TEST(FaultInjector, PayloadTargetNeverHitsHeaders)
{
    auto codec = makeDeltaDCodec(16);
    EncodedTensor enc = codec->encode(smoothTensor(3));
    ASSERT_FALSE(enc.headerBits.empty());

    FaultSpec spec;
    spec.target = FaultTarget::Payload;
    spec.flips = 64;
    FaultInjector inj(11);
    FaultReport report = inj.inject(enc, spec);
    ASSERT_EQ(report.flippedBits.size(), 64u);
    for (std::size_t bit : report.flippedBits) {
        for (const BitRange &r : enc.headerBits)
            EXPECT_FALSE(r.contains(bit)) << "payload flip in header";
    }
}

TEST(FaultInjector, HeaderTargetOnlyHitsHeaders)
{
    auto codec = makeRawDCodec(16);
    EncodedTensor enc = codec->encode(smoothTensor(4));
    FaultSpec spec;
    spec.target = FaultTarget::Header;
    spec.flips = 16;
    FaultInjector inj(13);
    FaultReport report = inj.inject(enc, spec);
    ASSERT_EQ(report.flippedBits.size(), 16u);
    for (std::size_t bit : report.flippedBits) {
        bool in_header = false;
        for (const BitRange &r : enc.headerBits)
            in_header = in_header || r.contains(bit);
        EXPECT_TRUE(in_header) << "header flip outside headers";
    }
}

TEST(FaultInjector, HeaderTargetIsNoOpWithoutHeaders)
{
    auto codec = makeNoCompressionCodec();
    EncodedTensor enc = codec->encode(smoothTensor(5));
    ByteVec before = enc.bytes;
    FaultSpec spec;
    spec.target = FaultTarget::Header;
    FaultInjector inj(17);
    EXPECT_TRUE(inj.inject(enc, spec).flippedBits.empty());
    EXPECT_EQ(enc.bytes, before);
}

TEST(FaultInjector, BurstFlipsContiguousBits)
{
    auto codec = makeNoCompressionCodec();
    EncodedTensor enc = codec->encode(smoothTensor(6));
    FaultSpec spec;
    spec.model = FaultModel::Burst;
    spec.burstLength = 12;
    FaultInjector inj(19);
    FaultReport report = inj.inject(enc, spec);
    ASSERT_FALSE(report.flippedBits.empty());
    for (std::size_t i = 1; i < report.flippedBits.size(); ++i)
        EXPECT_EQ(report.flippedBits[i], report.flippedBits[i - 1] + 1);
    EXPECT_LE(report.flippedBits.size(), 12u);
}

TEST(FaultInjector, RawTensorInjectionIsDeterministic)
{
    TensorI16 a = smoothTensor(7), b = a;
    FaultSpec spec;
    spec.flips = 9;
    FaultInjector ia(23), ib(23);
    EXPECT_EQ(ia.inject(a, spec), ib.inject(b, spec));
    EXPECT_EQ(a, b);
    PropagationMetrics m = compareTensors(smoothTensor(7), a);
    EXPECT_GE(m.corruptedValues, 1u);
    EXPECT_LE(m.corruptedValues, 9u); // one flip corrupts one value
}

// ---------------------------------------------------------------
// Propagation: delta amplification and re-anchoring containment
// ---------------------------------------------------------------

TEST(Propagation, DeltaStorageAmplifiesSingleBitFaults)
{
    TensorI16 clean = smoothTensor(8);
    FaultSpec spec;
    spec.model = FaultModel::SingleBit;
    spec.target = FaultTarget::Payload;

    PropagationSummary raw =
        sweepFaults(*makeRawDCodec(16), clean, spec, 200, 31);
    PropagationSummary delta =
        sweepFaults(*makeDeltaDCodec(16), clean, spec, 200, 31);

    // RawD: one payload flip corrupts exactly one value. DeltaD: the
    // flipped delta propagates through the prefix sum to the end of
    // the row, so the mean blast radius must be strictly larger.
    EXPECT_GT(delta.meanCorruptedValues, raw.meanCorruptedValues * 4);
    EXPECT_GT(delta.maxCorruptedRun, raw.maxCorruptedRun);
}

TEST(Propagation, ReanchoringBoundsBlastRadius)
{
    TensorI16 clean = smoothTensor(9);
    FaultSpec spec;
    spec.model = FaultModel::SingleBit;
    spec.target = FaultTarget::Payload;

    const int K = 8;
    PropagationSummary anchored =
        sweepFaults(*makeDeltaDCodec(16, K), clean, spec, 300, 37);
    PropagationSummary plain =
        sweepFaults(*makeDeltaDCodec(16), clean, spec, 300, 37);

    // Corruption never crosses a checkpoint.
    EXPECT_LE(anchored.maxCorruptedRun, static_cast<std::size_t>(K));
    EXPECT_GT(plain.maxCorruptedRun, static_cast<std::size_t>(K));
}

TEST(Propagation, CorruptionConfinedToOneAnchorSegment)
{
    TensorI16 clean = smoothTensor(10, 2, 4, 48);
    const int K = 16;
    auto codec = makeDeltaDCodec(16, K);
    FaultSpec spec;
    spec.model = FaultModel::SingleBit;
    spec.target = FaultTarget::Payload;

    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        EncodedTensor enc = codec->encode(clean);
        FaultInjector inj(seed);
        inj.inject(enc, spec);
        DecodeResult dec = codec->tryDecode(enc);
        ASSERT_TRUE(dec.ok());
        // All corrupted positions must share one row and one K-bucket.
        int row = -1, chan = -1, bucket = -1;
        for (int c = 0; c < clean.channels(); ++c) {
            for (int y = 0; y < clean.height(); ++y) {
                for (int x = 0; x < clean.width(); ++x) {
                    if (dec.tensor.at(c, y, x) == clean.at(c, y, x))
                        continue;
                    if (row < 0) {
                        chan = c;
                        row = y;
                        bucket = x / K;
                    }
                    EXPECT_EQ(c, chan);
                    EXPECT_EQ(y, row);
                    EXPECT_EQ(x / K, bucket);
                }
            }
        }
    }
}

TEST(Propagation, SealedStreamsConvertSilentCorruptionToDetected)
{
    TensorI16 clean = smoothTensor(12);
    FaultSpec spec;
    spec.model = FaultModel::SingleBit;
    spec.target = FaultTarget::Payload;
    auto codec = makeDeltaDCodec(16);

    PropagationSummary bare =
        sweepFaults(*codec, clean, spec, 200, 43);
    PropagationSummary sealed =
        sweepFaults(*codec, clean, spec, 200, 43,
                    /*sealStreams=*/true);

    // DeltaD payload flips decode "fine" structurally, so without the
    // footer nearly every trial is silent. With sealing, the CRC
    // catches every flip: zero silent corruptions remain.
    EXPECT_GT(bare.silentCorruptions, 0u);
    EXPECT_EQ(bare.crcDetected, 0u);
    EXPECT_EQ(sealed.silentCorruptions, 0u);
    // A single-bit payload flip always changes a payload byte, so the
    // CRC catches every trial — even flips that happened to decode to
    // the exact original values.
    EXPECT_EQ(sealed.crcDetected, sealed.trials);
    EXPECT_EQ(sealed.trials,
              sealed.decodeErrors + sealed.silentCorruptions +
                  sealed.exactDecodes);

    // Recovery cost: no re-anchoring, so a detected fault re-decodes
    // the whole row.
    EXPECT_DOUBLE_EQ(sealed.meanRecoveryCycles,
                     static_cast<double>(clean.width()));

    // With re-anchoring the recharge window shrinks to K.
    const int K = 16;
    PropagationSummary anchored =
        sweepFaults(*makeDeltaDCodec(16, K), clean, spec, 200, 43,
                    /*sealStreams=*/true, /*reanchorInterval=*/K);
    EXPECT_EQ(anchored.silentCorruptions, 0u);
    EXPECT_DOUBLE_EQ(anchored.meanRecoveryCycles,
                     static_cast<double>(K));
}

TEST(Propagation, TrialOutcomesPartition)
{
    TensorI16 clean = smoothTensor(11);
    FaultSpec spec;
    spec.model = FaultModel::SingleBit;
    spec.target = FaultTarget::Header;
    PropagationSummary s =
        sweepFaults(*makeDeltaDCodec(16), clean, spec, 150, 41);
    EXPECT_EQ(s.trials, 150u);
    EXPECT_EQ(s.trials,
              s.decodeErrors + s.silentCorruptions + s.exactDecodes);
    // Header faults must sometimes desync or over-declare widths: the
    // hardened decoder should detect at least some of them.
    EXPECT_GT(s.decodeErrors + s.silentCorruptions, 0u);
}

TEST(Propagation, CompareTensorsMetrics)
{
    TensorI16 clean(1, 2, 8, 100);
    TensorI16 dirty = clean;
    dirty.at(0, 0, 2) = 110; // |err| 10
    dirty.at(0, 0, 3) = 90;
    dirty.at(0, 1, 7) = 400; // |err| 300, isolated
    PropagationMetrics m = compareTensors(clean, dirty);
    EXPECT_EQ(m.corruptedValues, 3u);
    EXPECT_EQ(m.maxCorruptedRun, 2u);
    EXPECT_EQ(m.maxAbsError, 300);
    EXPECT_TRUE(std::isfinite(m.psnrDb));

    PropagationMetrics exact = compareTensors(clean, clean);
    EXPECT_EQ(exact.corruptedValues, 0u);
    EXPECT_TRUE(std::isinf(exact.psnrDb));
}

// ---------------------------------------------------------------
// Hardened decode: randomized corrupt-input sweep (>= 10k streams)
// ---------------------------------------------------------------

std::vector<std::unique_ptr<ActivationCodec>>
allCodecs()
{
    std::vector<std::unique_ptr<ActivationCodec>> codecs;
    codecs.push_back(makeNoCompressionCodec());
    codecs.push_back(makeRlezCodec());
    codecs.push_back(makeRleCodec());
    codecs.push_back(makeProfiledCodec(12));
    codecs.push_back(makeRawDCodec(8));
    codecs.push_back(makeRawDCodec(16));
    codecs.push_back(makeRawDCodec(256));
    codecs.push_back(makeDeltaDCodec(8));
    codecs.push_back(makeDeltaDCodec(16));
    codecs.push_back(makeDeltaDCodec(256));
    codecs.push_back(makeDeltaDCodec(16, 8));
    return codecs;
}

TEST(HardenedDecode, RandomizedCorruptStreamsNeverCrash)
{
    const int kIterationsPerCodec = 1000; // 11 codecs -> 11000 streams
    TensorI16 t = smoothTensor(12, 2, 4, 16);
    Rng rng(2024);
    std::size_t streams = 0, ok = 0, rejected = 0;

    for (const auto &codec : allCodecs()) {
        const EncodedTensor valid = codec->encode(t);
        for (int it = 0; it < kIterationsPerCodec; ++it) {
            EncodedTensor enc = valid;
            switch (rng.below(3)) {
              case 0: { // bit flips anywhere in the buffer
                int flips = 1 + static_cast<int>(rng.below(8));
                for (int f = 0; f < flips && !enc.bytes.empty(); ++f) {
                    std::size_t bit =
                        rng.below(enc.bytes.size() * 8);
                    enc.bytes[bit / 8] ^=
                        static_cast<std::uint8_t>(1u << (bit % 8));
                }
                break;
              }
              case 1: { // truncation (possibly to nothing)
                std::size_t keep = rng.below(enc.bytes.size() + 1);
                enc.bytes.resize(keep);
                break;
              }
              default: { // arbitrary garbage buffer
                std::size_t len = rng.below(64);
                enc.bytes.assign(len, 0);
                for (auto &b : enc.bytes)
                    b = static_cast<std::uint8_t>(rng.below(256));
                break;
              }
            }
            DecodeResult r = codec->tryDecode(enc);
            ++streams;
            if (r.ok()) {
                ++ok;
                EXPECT_EQ(r.tensor.shape(), enc.shape);
                EXPECT_EQ(r.valuesDecoded, r.tensor.size());
            } else {
                ++rejected;
                EXPECT_FALSE(r.message.empty());
            }
        }
    }
    EXPECT_GE(streams, 10000u);
    EXPECT_EQ(streams, ok + rejected);
    // Both outcomes must actually occur, or the sweep proves nothing.
    EXPECT_GT(ok, 0u);
    EXPECT_GT(rejected, 0u);
}

TEST(HardenedDecode, HostileShapesRejectedWithoutAllocation)
{
    for (const auto &codec : allCodecs()) {
        EncodedTensor enc;
        enc.shape = {-1, 4, 4};
        EXPECT_EQ(codec->tryDecode(enc).status, DecodeStatus::BadShape)
            << codec->name();

        enc.shape = {1 << 20, 1 << 20, 1 << 20}; // would overflow
        EXPECT_EQ(codec->tryDecode(enc).status, DecodeStatus::BadShape)
            << codec->name();

        enc.shape = {1 << 10, 1 << 10, 1 << 10}; // over the decode cap
        EXPECT_EQ(codec->tryDecode(enc).status, DecodeStatus::BadShape)
            << codec->name();
    }
}

// ---------------------------------------------------------------
// Re-anchoring codec properties
// ---------------------------------------------------------------

TEST(ReanchorCodec, RoundTripsLosslessly)
{
    Rng rng(99);
    TensorI16 t(3, 5, 37);
    for (std::size_t i = 0; i < t.size(); ++i) {
        t.data()[i] = static_cast<std::int16_t>(
            static_cast<std::int32_t>(rng.below(65536)) - 32768);
    }
    for (int k : {1, 3, 8, 16, 64}) {
        auto codec = makeDeltaDCodec(16, k);
        EXPECT_EQ(codec->decode(codec->encode(t)), t) << codec->name();
    }
}

TEST(ReanchorCodec, NameAndValidation)
{
    EXPECT_EQ(makeDeltaDCodec(16)->name(), "DeltaD16");
    EXPECT_EQ(makeDeltaDCodec(16, 8)->name(), "DeltaD16.A8");
    EXPECT_THROW(makeDeltaDCodec(16, -1), std::invalid_argument);
}

TEST(ReanchorCodec, AnchorsCostFootprint)
{
    // Smooth data: deltas are a few bits, raw anchors ~12; denser
    // anchoring must therefore cost stream size.
    TensorI16 t = smoothTensor(13);
    double plain = makeDeltaDCodec(16)->bitsPerValue(t);
    double sparse_anchor = makeDeltaDCodec(16, 32)->bitsPerValue(t);
    double dense_anchor = makeDeltaDCodec(16, 4)->bitsPerValue(t);
    EXPECT_GT(dense_anchor, sparse_anchor);
    EXPECT_GE(sparse_anchor, plain);
}

} // namespace
} // namespace diffy
