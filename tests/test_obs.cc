/**
 * @file
 * Tests for the observability layer (src/obs): sharded counter and
 * histogram determinism across thread counts, the disabled-registry
 * zero-allocation guarantee, JSON snapshot round-trips, and the span
 * tracer's Chrome trace output (parsed back by a minimal JSON reader
 * below — well-formedness is part of the contract).
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>
#include <mutex>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "runtime/thread_pool.hh"

namespace diffy
{
namespace
{

/* --------------------------------------------------------- JSON reader */

/**
 * Minimal recursive-descent JSON value, just enough to verify that the
 * artifacts we emit are well-formed and carry the expected fields.
 */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> fields;

    const JsonValue &at(const std::string &key) const
    {
        auto it = fields.find(key);
        if (it == fields.end())
            throw std::runtime_error("json: missing key " + key);
        return it->second;
    }
    bool has(const std::string &key) const
    {
        return fields.count(key) > 0;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(std::string text) : text_(std::move(text)) {}

    JsonValue parse()
    {
        JsonValue v = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            throw std::runtime_error("json: trailing content");
        return v;
    }

  private:
    void skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek()
    {
        skipSpace();
        if (pos_ >= text_.size())
            throw std::runtime_error("json: unexpected end");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            throw std::runtime_error(std::string("json: expected '") + c +
                                     "' at " + std::to_string(pos_));
        ++pos_;
    }

    bool consume(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    JsonValue parseValue()
    {
        char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"') {
            JsonValue v;
            v.kind = JsonValue::Kind::String;
            v.str = parseString();
            return v;
        }
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            return v;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            return v;
        }
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            return JsonValue{};
        }
        return parseNumber();
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    throw std::runtime_error("json: bad escape");
                char e = text_[pos_++];
                switch (e) {
                  case '"':
                  case '\\':
                  case '/':
                    out.push_back(e);
                    break;
                  case 'n':
                    out.push_back('\n');
                    break;
                  case 't':
                    out.push_back('\t');
                    break;
                  case 'u':
                    // \uXXXX: ASCII subset only (what we emit).
                    if (pos_ + 4 > text_.size())
                        throw std::runtime_error("json: bad \\u");
                    out.push_back(static_cast<char>(std::stoi(
                        text_.substr(pos_, 4), nullptr, 16)));
                    pos_ += 4;
                    break;
                  default:
                    throw std::runtime_error("json: bad escape");
                }
            } else {
                out.push_back(c);
            }
        }
        if (pos_ >= text_.size())
            throw std::runtime_error("json: unterminated string");
        ++pos_; // closing quote
        return out;
    }

    JsonValue parseNumber()
    {
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            throw std::runtime_error("json: expected a value at " +
                                     std::to_string(start));
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = std::stod(text_.substr(start, pos_ - start));
        return v;
    }

    JsonValue parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (consume('}'))
            return v;
        do {
            std::string key = parseString();
            expect(':');
            v.fields.emplace(std::move(key), parseValue());
        } while (consume(','));
        expect('}');
        return v;
    }

    JsonValue parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (consume(']'))
            return v;
        do {
            v.items.push_back(parseValue());
        } while (consume(','));
        expect(']');
        return v;
    }

    std::string text_;
    std::size_t pos_ = 0;
};

JsonValue
parseJsonFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return JsonParser(buffer.str()).parse();
}

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

/* ------------------------------------------------------------ counters */

/** Spread @p total increments over @p threads workers and return the
 *  counter's merged value. */
std::uint64_t
countAcross(obs::Counter &counter, int threads, int total)
{
    std::vector<std::thread> workers;
    int per = total / threads;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&counter, per] {
            for (int i = 0; i < per; ++i)
                counter.add(1);
        });
    }
    for (auto &w : workers)
        w.join();
    return counter.value();
}

TEST(ObsCounter, ExactAcrossThreadCounts)
{
    auto &reg = obs::MetricsRegistry::instance();
    for (int threads : {1, 2, 8}) {
        obs::Counter &counter = reg.counter(
            "test.counter_threads_" + std::to_string(threads));
        EXPECT_EQ(countAcross(counter, threads, 8000), 8000u)
            << threads << " threads";
        // One shard per recording thread, no more.
        EXPECT_LE(counter.shardCount(),
                  static_cast<std::size_t>(threads));
    }
}

TEST(ObsCounter, ResetZeroesButKeepsShards)
{
    auto &reg = obs::MetricsRegistry::instance();
    obs::Counter &counter = reg.counter("test.counter_reset");
    countAcross(counter, 2, 100);
    std::size_t shards = counter.shardCount();
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
    EXPECT_EQ(counter.shardCount(), shards);
    counter.add(3);
    EXPECT_EQ(counter.value(), 3u);
}

TEST(ObsRegistry, FindOrCreateReturnsSameHandle)
{
    auto &reg = obs::MetricsRegistry::instance();
    EXPECT_EQ(&reg.counter("test.same_handle"),
              &reg.counter("test.same_handle"));
    EXPECT_EQ(&reg.histogram("test.same_hist"),
              &reg.histogram("test.same_hist"));
    EXPECT_EQ(&reg.gauge("test.same_gauge"),
              &reg.gauge("test.same_gauge"));
}

/* ---------------------------------------------------------- histograms */

TEST(ObsHistogram, SnapshotDeterministicAcrossThreadCounts)
{
    // Exactly representable sample values: count/sum/min/max and the
    // integer bucket map must merge to identical results regardless of
    // how the samples were spread over shards.
    auto &reg = obs::MetricsRegistry::instance();
    obs::LatencyHistogram::Snapshot reference;
    bool first = true;
    for (int threads : {1, 2, 8}) {
        obs::LatencyHistogram &hist = reg.histogram(
            "test.hist_threads_" + std::to_string(threads));
        std::vector<std::thread> workers;
        for (int t = 0; t < threads; ++t) {
            workers.emplace_back([&hist, t, threads] {
                for (int i = t; i < 64; i += threads)
                    hist.record(0.25 * (1 + i % 8));
            });
        }
        for (auto &w : workers)
            w.join();
        obs::LatencyHistogram::Snapshot snap = hist.snapshot();
        EXPECT_EQ(snap.stat.count(), 64u);
        if (first) {
            reference = snap;
            first = false;
            continue;
        }
        EXPECT_EQ(snap.stat.count(), reference.stat.count());
        EXPECT_EQ(snap.stat.sum(), reference.stat.sum());
        EXPECT_EQ(snap.stat.min(), reference.stat.min());
        EXPECT_EQ(snap.stat.max(), reference.stat.max());
        // Welford's mean is order-sensitive at the ULP level.
        EXPECT_NEAR(snap.stat.mean(), reference.stat.mean(), 1e-12);
        EXPECT_EQ(snap.log2Nanos.bins(), reference.log2Nanos.bins());
    }
}

TEST(ObsHistogram, BucketsArePowerOfTwoNanos)
{
    auto &reg = obs::MetricsRegistry::instance();
    obs::LatencyHistogram &hist = reg.histogram("test.hist_buckets");
    hist.record(1e-9); // 1 ns  -> bit_width(1)  = 1
    hist.record(1e-6); // 1 us  -> bit_width(1000) = 10
    hist.record(1e-3); // 1 ms  -> bit_width(1e6) = 20
    hist.record(0.0);  // non-positive -> bucket 0
    obs::LatencyHistogram::Snapshot snap = hist.snapshot();
    EXPECT_EQ(snap.log2Nanos.countOf(0), 1u);
    EXPECT_EQ(snap.log2Nanos.countOf(1), 1u);
    EXPECT_EQ(snap.log2Nanos.countOf(10), 1u);
    EXPECT_EQ(snap.log2Nanos.countOf(20), 1u);
}

/* ------------------------------------------------------ disable switch */

TEST(ObsRegistry, DisabledRecordingAllocatesNothing)
{
    auto &reg = obs::MetricsRegistry::instance();
    obs::Counter &counter = reg.counter("test.disabled_counter");
    obs::LatencyHistogram &hist = reg.histogram("test.disabled_hist");
    ASSERT_TRUE(obs::MetricsRegistry::enabled());
    obs::MetricsRegistry::setEnabled(false);
    counter.add(5);
    hist.record(0.5);
    {
        obs::ScopedLatency timer(hist); // inert: no clock, no record
    }
    std::thread other([&] {
        counter.add(7);
        hist.record(0.25);
    });
    other.join();
    obs::MetricsRegistry::setEnabled(true);
    // Zero shards were created, zero samples recorded.
    EXPECT_EQ(counter.shardCount(), 0u);
    EXPECT_EQ(counter.value(), 0u);
    EXPECT_EQ(hist.shardCount(), 0u);
    EXPECT_EQ(hist.snapshot().stat.count(), 0u);
}

/* -------------------------------------------------------- JSON snapshot */

TEST(ObsSnapshot, JsonRoundTripsThroughAParser)
{
    auto &reg = obs::MetricsRegistry::instance();
    reg.counter("test.json_counter").add(41);
    reg.counter("test.json_counter").add(1);
    reg.gauge("test.json_gauge").set(2.5);
    reg.histogram("test.json_hist").record(0.5);
    reg.histogram("test.json_hist").record(0.25);

    std::ostringstream os;
    obs::writeJson(reg.snapshot(), os);
    JsonValue root = JsonParser(os.str()).parse();

    EXPECT_EQ(root.at("counters").at("test.json_counter").number, 42.0);
    EXPECT_EQ(root.at("gauges").at("test.json_gauge").number, 2.5);
    const JsonValue &hist =
        root.at("histograms").at("test.json_hist");
    EXPECT_EQ(hist.at("count").number, 2.0);
    EXPECT_EQ(hist.at("sum").number, 0.75);
    EXPECT_EQ(hist.at("min").number, 0.25);
    EXPECT_EQ(hist.at("max").number, 0.5);
    EXPECT_FALSE(hist.at("log2_nanos").fields.empty());
}

TEST(ObsSnapshot, EscapesAwkwardMetricNames)
{
    auto &reg = obs::MetricsRegistry::instance();
    reg.counter("test.quote\"backslash\\name").add(1);
    std::ostringstream os;
    obs::writeJson(reg.snapshot(), os);
    JsonValue root = JsonParser(os.str()).parse();
    EXPECT_EQ(root.at("counters")
                  .at("test.quote\"backslash\\name")
                  .number,
              1.0);
}

/* --------------------------------------------------------------- spans */

TEST(ObsTracer, NestedSpansEmitWellFormedChromeTrace)
{
    const std::string path = tempPath("obs_nested_trace.json");
    {
        obs::Tracer tracer(path);
        {
            obs::Span outer(tracer, "outer", 7);
            {
                obs::Span inner(tracer, "inner");
            }
        }
        EXPECT_EQ(tracer.eventCount(), 2u);
        tracer.flush();
    }
    JsonValue root = parseJsonFile(path);
    EXPECT_EQ(root.at("displayTimeUnit").str, "ms");
    const JsonValue &events = root.at("traceEvents");
    ASSERT_EQ(events.items.size(), 2u);

    // Spans close inner-first, so events arrive in end order.
    const JsonValue &inner = events.items[0];
    const JsonValue &outer = events.items[1];
    EXPECT_EQ(inner.at("name").str, "inner");
    EXPECT_EQ(outer.at("name").str, "outer");
    EXPECT_EQ(inner.at("ph").str, "X");
    EXPECT_EQ(outer.at("args").at("index").number, 7.0);
    EXPECT_FALSE(inner.has("args"));
    // Timestamp containment: the inner span nests inside the outer.
    double innerStart = inner.at("ts").number;
    double innerEnd = innerStart + inner.at("dur").number;
    double outerStart = outer.at("ts").number;
    double outerEnd = outerStart + outer.at("dur").number;
    EXPECT_LE(outerStart, innerStart);
    EXPECT_LE(innerEnd, outerEnd);
    std::remove(path.c_str());
}

TEST(ObsTracer, DisabledTracerRecordsNothing)
{
    obs::Tracer tracer; // no path: disabled
    EXPECT_FALSE(tracer.enabled());
    {
        obs::Span span(tracer, "ignored");
        obs::Span arg(tracer, "ignored_too", 3);
    }
    EXPECT_EQ(tracer.eventCount(), 0u);
    // An empty span name is inert even on an enabled tracer.
    const std::string path = tempPath("obs_empty_name.json");
    {
        obs::Tracer enabled(path);
        obs::Span span(enabled, "");
    }
    JsonValue root = parseJsonFile(path);
    EXPECT_TRUE(root.at("traceEvents").items.empty());
    std::remove(path.c_str());
}

TEST(ObsTracer, ConfigureRedirectsAndClears)
{
    const std::string first = tempPath("obs_cfg_first.json");
    const std::string second = tempPath("obs_cfg_second.json");
    obs::Tracer tracer(first);
    {
        obs::Span span(tracer, "one");
    }
    tracer.configure(second); // flushes "one" to first, then clears
    {
        obs::Span span(tracer, "two");
    }
    tracer.configure(""); // flushes "two" to second, then disables
    EXPECT_FALSE(tracer.enabled());

    JsonValue a = parseJsonFile(first);
    ASSERT_EQ(a.at("traceEvents").items.size(), 1u);
    EXPECT_EQ(a.at("traceEvents").items[0].at("name").str, "one");
    JsonValue b = parseJsonFile(second);
    ASSERT_EQ(b.at("traceEvents").items.size(), 1u);
    EXPECT_EQ(b.at("traceEvents").items[0].at("name").str, "two");
    std::remove(first.c_str());
    std::remove(second.c_str());
}

TEST(ObsScopedLatency, RecordsOneSample)
{
    auto &reg = obs::MetricsRegistry::instance();
    obs::LatencyHistogram &hist = reg.histogram("test.scoped_latency");
    {
        obs::ScopedLatency timer(hist);
    }
    obs::LatencyHistogram::Snapshot snap = hist.snapshot();
    EXPECT_EQ(snap.stat.count(), 1u);
    EXPECT_GE(snap.stat.min(), 0.0);
}

// Backpressure observability pins (DESIGN.md §13): the serving loop
// relies on `thread_pool.queue_depth` and `serve.rejected` existing
// under exactly these names — CI scripts and dashboards key on them.

TEST(ObsGauge, ThreadPoolQueueDepthTracksBacklog)
{
    auto &gauge =
        obs::MetricsRegistry::instance().gauge("thread_pool.queue_depth");
    std::mutex m;
    std::condition_variable cv;
    bool started = false;
    bool release = false;
    ThreadPool pool(1);
    // Block the only worker so submissions pile up deterministically.
    pool.submit([&] {
        std::unique_lock<std::mutex> lock(m);
        started = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
    });
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return started; });
    }
    for (int i = 0; i < 4; ++i)
        pool.submit([] {});
    EXPECT_EQ(gauge.value(), 4.0);
    {
        std::lock_guard<std::mutex> lock(m);
        release = true;
    }
    cv.notify_all();
    pool.wait();
    EXPECT_EQ(gauge.value(), 0.0);
    auto snap = obs::MetricsRegistry::instance().snapshot();
    EXPECT_TRUE(snap.gauges.count("thread_pool.queue_depth"));
}

TEST(ObsCounter, ServeRejectedCounterNameIsPinned)
{
    auto &counter =
        obs::MetricsRegistry::instance().counter("serve.rejected");
    const std::uint64_t before = counter.value();
    counter.add(3);
    EXPECT_EQ(counter.value(), before + 3);
    auto snap = obs::MetricsRegistry::instance().snapshot();
    EXPECT_EQ(snap.counters.at("serve.rejected"), before + 3);
}

} // namespace
} // namespace diffy
